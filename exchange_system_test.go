package orchestra

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
)

// exchangeWorkload builds a small confederation and a deterministic
// publication history with insert/delete churn: rounds of per-peer
// publications where later rounds delete entries inserted by earlier
// ones, so coalescing has insert+delete pairs to cancel and the serial
// replay pays real deletion cascades.
func exchangeWorkload(t *testing.T, seed int64) (*Workload, []Publication) {
	t.Helper()
	w, err := NewWorkload(WorkloadConfig{
		Peers:    4,
		Topology: TopologyChain,
		AttrMode: AttrsShared,
		Dataset:  DatasetInteger,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed * 7711))
	var pubs []Publication
	for round := 0; round < 6; round++ {
		for _, peer := range w.PeerNames() {
			log := w.GenInsertions(peer, 1+rng.Intn(3))
			if round > 1 && rng.Intn(2) == 0 {
				log = append(log, w.GenDeletions(peer, 1)...)
			}
			if len(log) == 0 {
				continue
			}
			pubs = append(pubs, Publication{Peer: peer, Log: log})
		}
	}
	return w, pubs
}

// publishAll pushes a shared publication history into a system's bus.
func publishAll(t *testing.T, sys *System, pubs []Publication) {
	t.Helper()
	ctx := context.Background()
	for _, p := range pubs {
		if err := sys.Publish(ctx, p.Peer, p.Log); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExchangeEquivalence is the exchange equivalence property: for
// random workloads, parallel+coalesced exchange ends observationally
// identical — instances, rejections, provenance derivations, and a
// consistent labeled-null bijection — to the reference serial
// per-publication replay over the same publication history, regardless
// of how the two systems' intermediate exchanges interleave with the
// publications. Runs on both backends; raise ORCHESTRA_EXCHANGE_SEEDS
// for a deeper sweep (the nightly CI job does).
func TestExchangeEquivalence(t *testing.T) {
	seeds := 3
	if s := os.Getenv("ORCHESTRA_EXCHANGE_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad ORCHESTRA_EXCHANGE_SEEDS %q", s)
		}
		seeds = n
	}
	for _, be := range []Backend{BackendIndexed, BackendHash} {
		name := "indexed"
		if be == BackendHash {
			name = "hash"
		}
		t.Run(name, func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					runExchangeEquivalence(t, be, int64(seed))
				})
			}
		})
	}
}

func runExchangeEquivalence(t *testing.T, be Backend, seed int64) {
	ctx := context.Background()
	w, pubs := exchangeWorkload(t, seed)

	ref, err := New(w.Spec, WithBackend(be),
		WithExchangeCoalescing(false), WithExchangeParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(w.Spec, WithBackend(be), WithExchangeParallelism(4))
	if err != nil {
		t.Fatal(err)
	}

	// Interleave publications with partial exchanges — deliberately
	// different interleavings per system, so the coalesced runs
	// [cursor, horizon) the parallel system sees differ from the
	// reference's per-publication steps. The final state must not care.
	rng := rand.New(rand.NewSource(seed * 31))
	for _, p := range pubs {
		for _, sys := range []*System{ref, par} {
			if err := sys.Publish(ctx, p.Peer, p.Log); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(3) == 0 {
			owner := w.PeerNames()[rng.Intn(len(w.PeerNames()))]
			if _, err := ref.Exchange(ctx, owner); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(3) == 0 {
			if _, err := par.ExchangeAll(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Materialize the global views too, then fully catch both systems up.
	if _, err := ref.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := par.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ExchangeAll(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := par.ExchangeAll(ctx); err != nil {
		t.Fatal(err)
	}

	assertStatesEqual(t, "parallel+coalesced vs serial replay",
		captureState(t, par), captureState(t, ref))
	assertNullBijectionByOwner(t, par, ref)
}

// assertNullBijectionByOwner checks labeled-null consistency per owner
// view: within each view the two systems' null ids must relate by one
// consistent bijection across every relation. Unlike the evolution
// test's assertNullBijection (one global map — valid there because
// every view imports the identical stream identically), the map resets
// per owner: each view has its own Skolem interner, and trust-filtered
// views intern in their own order, so id mappings are only meaningful
// view-locally.
func assertNullBijectionByOwner(t *testing.T, a, b *System) {
	t.Helper()
	owners := append(a.Peers(), "")
	for _, owner := range owners {
		fwd := make(map[int64]int64)
		rev := make(map[int64]int64)
		for _, rel := range a.RelationNames() {
			ra, err := a.Instance(owner, rel)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := b.Instance(owner, rel)
			if err != nil {
				t.Fatal(err)
			}
			if len(ra) != len(rb) {
				t.Fatalf("owner %q rel %q: %d vs %d rows", owner, rel, len(ra), len(rb))
			}
			byDesc := func(sys *System, rows []Tuple) map[string]Tuple {
				m := make(map[string]Tuple, len(rows))
				for _, r := range rows {
					d, err := sys.Describe(owner, r)
					if err != nil {
						t.Fatal(err)
					}
					m[d] = r
				}
				return m
			}
			ma, mb := byDesc(a, ra), byDesc(b, rb)
			for d, ta := range ma {
				tb, ok := mb[d]
				if !ok {
					t.Fatalf("owner %q rel %q: row %s missing from reference system", owner, rel, d)
				}
				for i := range ta {
					if !ta[i].IsNull() {
						continue
					}
					ai, bi := ta[i].NullID(), tb[i].NullID()
					if prev, ok := fwd[ai]; ok && prev != bi {
						t.Fatalf("owner %q: null id %d maps to both %d and %d", owner, ai, prev, bi)
					}
					if prev, ok := rev[bi]; ok && prev != ai {
						t.Fatalf("owner %q: null id %d mapped from both %d and %d", owner, bi, prev, ai)
					}
					fwd[ai], rev[bi] = bi, ai
				}
			}
		}
	}
}

// TestExchangeEquivalenceBaseTrust pins the trust/coalescing
// interaction the generic equivalence workload cannot reach (it runs
// without trust policies): a base-distrusted tuple inserted in one
// publication and deleted in a later one. The insert is vetoed at
// import, so the later delete is a curation rejection — NetEffect's
// membership simulation is trust-aware precisely so the coalesced pass
// reaches the same rejection instead of cancelling the pair, and so
// the outcome does not depend on how the edits were batched into
// publications.
func TestExchangeEquivalenceBaseTrust(t *testing.T) {
	const cdss = `
peer PGUS {
  relation G(id int, can int, nam int)
}
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m3: B(i,n) -> exists c . U(n,c)

trust PBioSQL distrusts base G when id >= 3
`
	parsed, err := ParseSpecString(cdss)
	if err != nil {
		t.Fatal(err)
	}
	pubs := []Publication{
		{Peer: "PGUS", Log: EditLog{Ins("G", MakeTuple(1, 2, 3))}},
		// Distrusted by PBioSQL (id >= 3): the insert is vetoed there,
		// so the cross-publication delete must become a rejection in
		// PBioSQL's view while cancelling cleanly everywhere else.
		{Peer: "PGUS", Log: EditLog{Ins("G", MakeTuple(5, 1, 1))}},
		{Peer: "PBioSQL", Log: EditLog{Ins("B", MakeTuple(7, 8))}},
		{Peer: "PGUS", Log: EditLog{Del("G", MakeTuple(5, 1, 1))}},
		// Same-publication churn of another distrusted tuple.
		{Peer: "PGUS", Log: EditLog{Ins("G", MakeTuple(6, 1, 1)), Del("G", MakeTuple(6, 1, 1))}},
	}
	for _, be := range []Backend{BackendIndexed, BackendHash} {
		ref, err := New(parsed.Spec, WithBackend(be),
			WithExchangeCoalescing(false), WithExchangeParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := New(parsed.Spec, WithBackend(be), WithExchangeParallelism(4))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for _, sys := range []*System{ref, par} {
			publishAll(t, sys, pubs)
			if _, err := sys.Exchange(ctx, ""); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.ExchangeAll(ctx); err != nil {
				t.Fatal(err)
			}
		}
		assertStatesEqual(t, "base-trust parallel+coalesced vs serial replay",
			captureState(t, par), captureState(t, ref))
		assertNullBijectionByOwner(t, par, ref)
		// The vetoed-then-deleted tuples must be standing rejections in
		// PBioSQL's view (they were never contributions there) on both
		// systems — not silently cancelled.
		for _, sys := range []*System{ref, par} {
			rej, err := sys.Rejections("PBioSQL", "G")
			if err != nil {
				t.Fatal(err)
			}
			if len(rej) != 2 {
				t.Fatalf("PBioSQL rejections of G = %v, want the two distrusted deletes", rej)
			}
		}
	}
}

// TestExchangeAllDeterminism is the scheduler determinism property:
// ExchangeAll over the same publication history produces byte-identical
// view snapshots (instances, provenance tables, interned labeled nulls
// and all) at exchange parallelism 1, 4, and GOMAXPROCS, on both
// backends. Unlike the equivalence test's bijection, this is exact
// equality: scheduling must not leak into any view's state, because
// every view's pass reads only the shared (immutable-prefix) bus and
// writes only view-owned state.
func TestExchangeAllDeterminism(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	for _, be := range []Backend{BackendIndexed, BackendHash} {
		name := "indexed"
		if be == BackendHash {
			name = "hash"
		}
		t.Run(name, func(t *testing.T) {
			var want map[string][32]byte
			for _, par := range []int{1, 4, gmp} {
				w, pubs := exchangeWorkload(t, 99)
				sys, err := New(w.Spec, WithBackend(be), WithExchangeParallelism(par))
				if err != nil {
					t.Fatal(err)
				}
				publishAll(t, sys, pubs)
				// Materialize the global view so ExchangeAll covers it.
				if _, err := sys.Exchange(context.Background(), ""); err != nil {
					t.Fatal(err)
				}
				if _, err := sys.ExchangeAll(context.Background()); err != nil {
					t.Fatal(err)
				}
				got := snapshotDigests(t, sys)
				if want == nil {
					want = got
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("parallelism %d: %d views, want %d", par, len(got), len(want))
				}
				for owner, sum := range got {
					if sum != want[owner] {
						t.Errorf("parallelism %d: view %q snapshot differs from parallelism 1", par, owner)
					}
				}
			}
		})
	}
}

// snapshotDigests captures every materialized view's full snapshot
// encoding (white-box: the same bytes a persistence checkpoint writes).
func snapshotDigests(t *testing.T, sys *System) map[string][32]byte {
	t.Helper()
	out := make(map[string][32]byte)
	sys.mu.RLock()
	owners := make([]string, 0, len(sys.views))
	for owner := range sys.views {
		owners = append(owners, owner)
	}
	sys.mu.RUnlock()
	for _, owner := range owners {
		h, err := sys.handle(owner)
		if err != nil {
			t.Fatal(err)
		}
		h.mu.Lock()
		var buf bytes.Buffer
		err = h.view.WriteSnapshot(&buf)
		h.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		out[owner] = sha256.Sum256(buf.Bytes())
	}
	return out
}
