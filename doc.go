// Package orchestra is a from-scratch Go reproduction of "Update Exchange
// with Mappings and Provenance" (Green, Karvounarakis, Ives, Tannen; VLDB
// 2007 / UPenn TR MS-CIS-07-26) — the Orchestra collaborative data
// sharing system (CDSS).
//
// This package is the one supported way to drive the system. Build a
// System over a parsed spec, publish edit logs, and run update exchange:
//
//	parsed, _ := orchestra.ParseSpecString(cdss)
//	sys, _ := orchestra.New(parsed.Spec,
//		orchestra.WithBackend(orchestra.BackendIndexed),
//		orchestra.WithDeletionStrategy(orchestra.DeleteProvenance))
//	sys.Publish(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))})
//	sys.Exchange(ctx, "")                                 // import into the global view
//	rows, _ := sys.Query(ctx, "", "ans(x,y) :- U(x,y)", false)
//	info, _ := sys.Provenance(ctx, "", "B", orchestra.MakeTuple(3, 2))
//
// Every operation takes a context.Context; cancellation reaches the
// engine's fixpoint loops and the provenance equation solver. A System
// is safe for concurrent use: exchanges of different peers' views run in
// parallel, operations on one view are serialized. ExchangeAll exploits
// exactly that — the per-view passes run concurrently over a bounded
// worker pool (WithExchangeParallelism), and each pass coalesces its
// pending publications into one net apply (WithExchangeCoalescing);
// neither is observable in any view's final state.
//
// Publications travel over a publication bus sharded by owning peer.
// The bus surface is three composable capabilities — BusAppender,
// BusReader, and BusWatcher (push subscriptions) — with PublicationBus
// their union; WithBus accepts any appender+reader and detects the
// watcher capability, so pull-only implementations (wrap them with
// AdaptBus) still work. The default in-memory bus runs everything
// embedded in one process; NewHTTPBus connects the identical
// application code to a shared publication service (BusServer, run
// standalone as cmd/orchestrad), giving the paper's federated
// operating mode. StartPush subscribes the System to its bus so
// publications are applied as they arrive instead of on the next
// Exchange call.
//
// A bus position is the opaque, shard-aware Cursor (String/ParseCursor
// give its durable form). The bare-int cursor surface that predates
// sharding — FetchSince, BusLen, the int cursor in ViewStat — remains
// as deprecated wrappers over Cursor.Total(): sound for totals and
// lag, but a scalar position cannot prove per-shard contiguity, so
// systems restored from one take a single pull exchange before push
// import resumes. New code should hold Cursor values.
//
// WithPersistence(dir) makes a System crash-safe: views are
// checkpointed — checksummed snapshot plus bus cursor, written
// atomically — into a state directory, the default bus is replaced by
// a durable log co-located there, and New recovers every persisted
// view, so the next Exchange replays only the publications past its
// checkpoint (see examples/durability).
//
// The spec is not frozen at New: AddPeer, AddMapping, RemoveMapping,
// SetTrust, and ApplyDiff evolve the running confederation, validating
// every intermediate spec and repairing materialized state in place —
// added mappings seed a fixpoint round, removed mappings and revoked
// trust delete exactly the tuples whose every derivation they carried
// (provenance-based deletion generalized to rule deletions). The result
// is always identical to a fresh System built from the final spec (see
// examples/evolution).
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); runnable entry points are:
//
//   - cmd/orchestra    — update exchange, queries, and provenance over
//     CDSS spec files;
//   - cmd/orchestrad   — the shared publication service;
//   - cmd/workloadgen  — §6.1 synthetic workload generation;
//   - cmd/benchfig     — regeneration of the paper's Figures 4–10;
//   - examples/…       — quickstart and domain scenarios, all written
//     against this package.
//
// The benchmarks in bench_test.go exercise the same per-figure harness
// under `go test -bench`.
package orchestra
