// Package orchestra is a from-scratch Go reproduction of "Update Exchange
// with Mappings and Provenance" (Green, Karvounarakis, Ives, Tannen; VLDB
// 2007 / UPenn TR MS-CIS-07-26) — the Orchestra collaborative data
// sharing system (CDSS).
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory); runnable entry points are:
//
//   - cmd/orchestra    — update exchange, queries, and provenance over
//     CDSS spec files;
//   - cmd/workloadgen  — §6.1 synthetic workload generation;
//   - cmd/benchfig     — regeneration of the paper's Figures 4–10;
//   - examples/…       — quickstart and domain scenarios.
//
// The benchmarks in bench_test.go exercise the same per-figure harness
// under `go test -bench`.
package orchestra
