module orchestra

go 1.24

tool orchestra/cmd/orchestralint
