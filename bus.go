package orchestra

import (
	"fmt"
	"net/http"

	"orchestra/internal/core"
	"orchestra/internal/logstore"
	"orchestra/internal/obs"
	"orchestra/internal/share"
)

// PublicationBus is the shared storage through which peers make their
// edit logs globally available (§2): the composition of BusAppender
// and BusReader — an append-only publication sequence, sharded by
// owning peer, with cursor-addressed fetch semantics. Implementations
// must be safe for concurrent use. Buses that additionally implement
// BusWatcher support push delivery (System.StartPush detects the
// capability at runtime).
type PublicationBus = core.PublicationBus

// BusAppender is the write capability of a publication bus.
type BusAppender = core.BusAppender

// BusReader is the pull capability of a publication bus:
// cursor-addressed fetch and horizon queries.
type BusReader = core.BusReader

// BusWatcher is the push capability of a publication bus: Subscribe
// streams each publication to the caller as it is appended.
type BusWatcher = core.BusWatcher

// LegacyBus is the pre-sharding bus shape (Append + scalar FetchSince).
//
// Deprecated: implement PublicationBus; AdaptBus bridges existing
// implementations in the meantime.
type LegacyBus = core.LegacyBus

// AdaptBus lifts a legacy Append/FetchSince bus into the sharded
// PublicationBus interface (positions are then unknown and cursors
// scalar, which cursor folding handles). A bus that already implements
// PublicationBus is returned unchanged.
func AdaptBus(b LegacyBus) PublicationBus { return core.AdaptBus(b) }

// Cursor is a typed bus position: a total publication count plus the
// per-shard breakdown push streaming resumes from. The zero Cursor is
// the beginning of the bus; String/ParseCursor give the durable form.
type Cursor = core.Cursor

// ParseCursor parses Cursor.String's durable form ("" parses to the
// zero Cursor).
func ParseCursor(s string) (Cursor, error) { return core.ParseCursor(s) }

// CursorFromTotal builds a scalar Cursor from a bare publication
// count, for callers migrating persisted int cursors; the first pull
// fetch upgrades it to an exact sharded position.
func CursorFromTotal(n int) Cursor { return core.CursorFromTotal(n) }

// Delta is one publication with its position on the owning peer's
// shard — the unit Subscribe streams and Fetch returns.
type Delta = core.Delta

// CancelFunc releases a subscription. Idempotent.
type CancelFunc = core.CancelFunc

// MemoryBus is the in-process bus: a mutex-guarded publication slice.
type MemoryBus = core.MemoryBus

// NewMemoryBus returns an empty in-memory publication bus. A System
// built without WithBus gets a private one automatically; create one
// explicitly to share a bus between several embedded Systems.
func NewMemoryBus() *MemoryBus { return core.NewMemoryBus() }

// FileBus is a durable PublicationBus: an in-memory publication
// sequence mirrored by an append-only log file, fsynced before a
// publication becomes fetchable. Opening the file replays earlier
// runs' publications (repairing a tail frame torn by a crash
// mid-append), so cursors persisted by WithPersistence stay valid
// across restarts. A System built with WithPersistence and no WithBus
// gets one automatically, co-located in the state directory; open one
// explicitly to share a durable bus between embedded Systems.
type FileBus = logstore.Bus

// OpenFileBus opens (or creates) a durable publication bus backed by
// the log file at path.
func OpenFileBus(path string) (*FileBus, error) { return logstore.OpenBus(path) }

// ShardedFileBus is the durable sharded bus: one append-only segment
// per publishing peer under a directory, appended concurrently and
// merged into one global order by a per-publication sequence number.
// It implements the full capability set (append, read, watch). A
// System built with WithPersistence and no WithBus gets one
// automatically, co-located in the state directory.
type ShardedFileBus = logstore.ShardedBus

// OpenShardedFileBus opens (or creates) a durable sharded bus under
// dir. If legacyPath names an old single-file bus log (and dir does
// not exist yet), its publications are migrated into the sharded
// layout first — pass "" to skip migration.
func OpenShardedFileBus(dir, legacyPath string) (*ShardedFileBus, error) {
	return logstore.OpenShardedBus(dir, legacyPath)
}

// HTTPBus is a PublicationBus backed by a remote publication service
// (a BusServer, typically run by cmd/orchestrad) over the share wire
// protocol. With it, the identical application code runs federated:
// several nodes publish to and exchange from the same service.
type HTTPBus = share.Bus

// NewHTTPBus returns a bus talking to the publication service at
// baseURL, e.g. "http://localhost:8344".
func NewHTTPBus(baseURL string) *HTTPBus { return share.NewBus(baseURL) }

// BusServer is the service side of the HTTP bus: an http.Handler
// speaking the publication wire protocol (POST /publish, GET /since),
// with optional spec validation and durable append-only persistence.
type BusServer struct {
	srv   *share.Server
	store *logstore.Store
	// reg is set by EnableMetrics so a later PersistTo can wire the
	// store's append instruments too.
	reg *obs.Registry
}

// EnableMetrics registers the publication service's instruments —
// publish accept/reject/fail counters, the publish-record lineage ring,
// and, when persisting, durable append telemetry — in o. Call it before
// serving; metrics and persistence wiring compose in either order.
func (s *BusServer) EnableMetrics(o *Observability) {
	s.srv.SetPubTracer(o.PubTracer())
	r := o.Registry()
	if r == nil {
		return
	}
	s.reg = r
	s.srv.SetMetrics(share.Metrics{
		PublishAccepted: r.Counter("orchestra_publish_accepted_total",
			"Publications the bus service accepted."),
		PublishRejected: r.Counter("orchestra_publish_rejected_total",
			"Publications the bus service rejected as illegal under the spec."),
		PublishFailed: r.Counter("orchestra_publish_failed_total",
			"Publications that failed to persist or record."),
	})
	if s.store != nil {
		s.store.SetMetrics(busAppendMetrics(r))
	}
}

// NewBusServer returns an in-memory publication service.
func NewBusServer() *BusServer { return &BusServer{srv: share.NewServer()} }

// ValidateAgainst makes the server reject publications that are illegal
// under the spec (unknown peers, edits to other peers' relations). It is
// safe to call on a serving BusServer — spec evolution re-points
// validation at the evolved spec.
func (s *BusServer) ValidateAgainst(sp *Spec) {
	s.srv.SetValidate(share.SpecValidator(sp))
}

// PersistTo durably appends every accepted publication to the given
// file, first reloading publications persisted by earlier runs so fetch
// cursors survive restarts. It returns the number of publications
// reloaded.
func (s *BusServer) PersistTo(path string) (int, error) {
	if s.store != nil {
		return 0, fmt.Errorf("orchestra: bus server already persisting")
	}
	store, err := logstore.Open(path)
	if err != nil {
		return 0, err
	}
	pubs, err := store.Replay()
	if err != nil {
		store.Close()
		return 0, err
	}
	for _, p := range pubs {
		if err := s.srv.Preload(p.Peer, p.Log, p.TraceID); err != nil {
			store.Close()
			return 0, err
		}
	}
	s.store = store
	s.srv.Persist = store.AppendTraced
	if s.reg != nil {
		store.SetMetrics(busAppendMetrics(s.reg))
	}
	return len(pubs), nil
}

// OnPublish registers a callback invoked after every accepted
// publication. It runs on the serving goroutine, so it must be fast and
// non-blocking — typically a non-blocking send on a wake-up channel
// that an exchange loop drains, coalescing publication bursts into one
// exchange pass (cmd/orchestrad's exchange-on-publish does exactly
// this).
func (s *BusServer) OnPublish(fn func()) { s.srv.OnPublish(fn) }

// ServeHTTP implements http.Handler.
func (s *BusServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.srv.ServeHTTP(w, r)
}

// Len returns the number of publications the server holds.
func (s *BusServer) Len() int { return s.srv.Len() }

// Close releases the persistence store, if any.
func (s *BusServer) Close() error {
	if s.store == nil {
		return nil
	}
	err := s.store.Close()
	s.store = nil
	return err
}
