package orchestra_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"orchestra"
)

func obsSystem(t *testing.T, opts ...orchestra.Option) (*orchestra.System, *orchestra.Observability) {
	t.Helper()
	o := orchestra.NewObservability(8)
	sys, err := orchestra.New(parseTestSpec(t), append(opts, orchestra.WithObservability(o))...)
	if err != nil {
		t.Fatal(err)
	}
	return sys, o
}

func publishExample(t *testing.T, sys *orchestra.System) {
	t.Helper()
	ctx := context.Background()
	for _, s := range []struct {
		peer string
		log  orchestra.EditLog
	}{
		{"PGUS", orchestra.EditLog{
			orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3)),
			orchestra.Ins("G", orchestra.MakeTuple(3, 5, 2)),
		}},
		{"PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(3, 5))}},
		{"PuBio", orchestra.EditLog{orchestra.Ins("U", orchestra.MakeTuple(2, 5))}},
	} {
		if err := sys.Publish(ctx, s.peer, s.log); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTraceTimingsSumToPassWallClock is the acceptance criterion for
// per-pass tracing: on a serial single-view pass, the recorded per-view
// wall clock accounts for the pass wall clock to within 10%, and the
// attributed phases never exceed the view's own wall clock.
func TestTraceTimingsSumToPassWallClock(t *testing.T) {
	sys, o := obsSystem(t)
	// Materialize the view first: the first exchange compiles the mapping
	// program outside the per-view timer, which would dominate the pass.
	if _, err := sys.Exchange(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	publishExample(t, sys)
	if _, err := sys.Exchange(context.Background(), ""); err != nil {
		t.Fatal(err)
	}

	traces := o.Tracer().Last(1)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	p := traces[0]
	if p.Kind != "exchange" {
		t.Fatalf("trace kind = %q, want exchange", p.Kind)
	}
	if len(p.Views) != 1 {
		t.Fatalf("got %d view passes, want 1", len(p.Views))
	}
	vp := p.Views[0]
	if vp.Publications != 3 {
		t.Fatalf("view pass consumed %d publications, want 3", vp.Publications)
	}
	if p.WallNS <= 0 || vp.WallNS <= 0 {
		t.Fatalf("non-positive wall clocks: pass=%d view=%d", p.WallNS, vp.WallNS)
	}
	// A serial pass is one view pass plus dispatch overhead: the view
	// must account for at least 90% of the pass.
	if float64(vp.WallNS) < 0.9*float64(p.WallNS) {
		t.Fatalf("view wall %dns is under 90%% of pass wall %dns", vp.WallNS, p.WallNS)
	}
	if vp.WallNS > p.WallNS {
		t.Fatalf("view wall %dns exceeds pass wall %dns", vp.WallNS, p.WallNS)
	}
	// The attributed phases partition work inside the view pass.
	phases := vp.FetchNS + vp.NetEffectNS + vp.DeleteNS + vp.InsertNS + vp.CheckpointNS
	if phases > vp.WallNS {
		t.Fatalf("phase sum %dns exceeds view wall %dns", phases, vp.WallNS)
	}
	if vp.InsertNS <= 0 {
		t.Fatalf("insert phase not timed: %+v", vp)
	}

	// The span tree mirrors the same numbers.
	root := p.SpanTree()
	if root == nil || len(root.Children) != 1 {
		t.Fatalf("span tree shape wrong: %+v", root)
	}
	if root.DurationNS != p.WallNS {
		t.Fatalf("root span duration %dns != pass wall %dns", root.DurationNS, p.WallNS)
	}
}

// TestExchangeAllTraceCoversEveryView checks the shared-pass contract:
// one exchange_all trace accumulates a view pass for every peer plus
// the materialized global view.
func TestExchangeAllTraceCoversEveryView(t *testing.T) {
	sys, o := obsSystem(t, orchestra.WithExchangeParallelism(4))
	ctx := context.Background()
	// Materialize the global view; the peers' views ExchangeAll creates.
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	publishExample(t, sys)
	if _, err := sys.ExchangeAll(ctx); err != nil {
		t.Fatal(err)
	}

	p := o.Tracer().Last(1)[0]
	if p.Kind != "exchange_all" {
		t.Fatalf("trace kind = %q, want exchange_all", p.Kind)
	}
	want := []string{"", "PGUS", "PBioSQL", "PuBio"}
	if len(p.Views) != len(want) {
		t.Fatalf("got %d view passes, want %d: %+v", len(p.Views), len(want), p.Views)
	}
	seen := map[string]bool{}
	for _, vp := range p.Views {
		seen[vp.Owner] = true
		if vp.Err != "" {
			t.Fatalf("view %q pass failed: %s", vp.Owner, vp.Err)
		}
	}
	for _, owner := range want {
		if !seen[owner] {
			t.Fatalf("no view pass for %q: %v", owner, seen)
		}
	}
}

// TestStatsAndMetricsExposition checks System.Stats and the Prometheus
// rendering after real exchanges, including the coalescing ratio from a
// cancelling insert+delete pair.
func TestStatsAndMetricsExposition(t *testing.T) {
	sys, o := obsSystem(t)
	ctx := context.Background()
	publishExample(t, sys)
	// An insert+delete pair that NetEffect cancels before the engine.
	if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{
		orchestra.Ins("G", orchestra.MakeTuple(9, 9, 9)),
		orchestra.Del("G", orchestra.MakeTuple(9, 9, 9)),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}

	st, err := sys.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.BusLen != 4 {
		t.Fatalf("BusLen = %d, want 4", st.BusLen)
	}
	if len(st.Views) != 1 || st.Views[0].Owner != "" {
		t.Fatalf("views = %+v, want one global view", st.Views)
	}
	if v := st.Views[0]; v.Cursor != 4 || v.Pending != 0 || v.Busy {
		t.Fatalf("view stat = %+v, want cursor 4, pending 0, idle", v)
	}

	var buf bytes.Buffer
	if err := o.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`orchestra_exchange_pass_duration_seconds_count{kind="exchange"} 1`,
		`orchestra_exchange_publications_total 4`,
		`orchestra_exchange_edits_cancelled_total 2`,
		`orchestra_view_cursor{view="(global)"} 4`,
		`orchestra_bus_lag{view="(global)"} 0`,
		`orchestra_coalesce_cancellation_ratio`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestObservabilityDisabledIsNoop: a System without WithObservability
// must behave identically and report nothing.
func TestObservabilityDisabledIsNoop(t *testing.T) {
	sys, err := orchestra.New(parseTestSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	publishExample(t, sys)
	if _, err := sys.Exchange(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	if o := sys.Observability(); o != nil {
		t.Fatalf("Observability() = %v, want nil", o)
	}
	if _, err := sys.Stats(context.Background()); err != nil {
		t.Fatal(err) // Stats works without instruments
	}
}

// TestSlowQueryCapture drives the read-path telemetry end to end
// through the facade: a 1ns threshold captures every query into the
// slow ring with its phase breakdown, and the per-outcome duration
// histogram shows up in the Prometheus exposition.
func TestSlowQueryCapture(t *testing.T) {
	sys, o := obsSystem(t, orchestra.WithSlowQueryThreshold(1))
	ctx := context.Background()
	publishExample(t, sys)
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	const q = "ans(i,n) :- G(i,c,n)"
	if _, err := sys.Query(ctx, "", q, false); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(ctx, "", q, false); err != nil { // cache hit
		t.Fatal(err)
	}

	slow := sys.SlowQueries(10)
	if len(slow) != 2 {
		t.Fatalf("got %d slow queries, want 2: %+v", len(slow), slow)
	}
	// Newest first: the second run hit the query cache.
	hit, miss := slow[0], slow[1]
	if hit.Outcome != "hit" || miss.Outcome != "miss" {
		t.Fatalf("outcomes = %q, %q; want hit, miss", hit.Outcome, miss.Outcome)
	}
	if !strings.Contains(miss.Query, "G(i,c,n)") {
		t.Fatalf("captured query text %q", miss.Query)
	}
	if miss.WallNS <= 0 || miss.EvalNS <= 0 || miss.Rows != 2 {
		t.Fatalf("miss record incomplete: %+v", miss)
	}
	if miss.Plan == "" {
		t.Fatalf("slow miss did not capture the plan: %+v", miss)
	}
	if len(miss.Deps) == 0 {
		t.Fatalf("slow miss did not capture dependency pins: %+v", miss)
	}
	if hit.Rows != miss.Rows {
		t.Fatalf("hit rows %d != miss rows %d", hit.Rows, miss.Rows)
	}

	var buf bytes.Buffer
	if err := o.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`orchestra_query_duration_seconds_count{outcome="miss"} 1`,
		`orchestra_query_duration_seconds_count{outcome="hit"} 1`,
		`orchestra_build_info{`,
		`orchestra_process_uptime_seconds`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestPublicationTraceLinksExchange follows one lineage id from
// NewTraceContext through Publish into the exchange pass trace: the
// view pass that consumed the publication lists its trace id, and
// PassTrace.TouchesTrace indexes the pass by it.
func TestPublicationTraceLinksExchange(t *testing.T) {
	sys, o := obsSystem(t)
	ctx, traceID := orchestra.NewTraceContext(context.Background())
	if traceID == "" || orchestra.TraceIDFromContext(ctx) != traceID {
		t.Fatalf("NewTraceContext minted %q", traceID)
	}
	if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{
		orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3)),
	}); err != nil {
		t.Fatal(err)
	}
	// A second publication on its own trace.
	ctx2, traceID2 := orchestra.NewTraceContext(context.Background())
	if err := sys.Publish(ctx2, "PBioSQL", orchestra.EditLog{
		orchestra.Ins("B", orchestra.MakeTuple(3, 5)),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(context.Background(), ""); err != nil {
		t.Fatal(err)
	}

	p := o.Tracer().Last(1)[0]
	if !p.TouchesTrace(traceID) || !p.TouchesTrace(traceID2) {
		t.Fatalf("pass does not touch both publications' traces: %+v", p.Views)
	}
	if p.TouchesTrace("0000feedfacefeedfacefeedfacefeed") {
		t.Fatal("TouchesTrace matched a foreign id")
	}
	var ids []string
	for _, vp := range p.Views {
		ids = append(ids, vp.TraceIDs...)
	}
	if len(ids) != 2 {
		t.Fatalf("view passes carried trace ids %v, want both publications'", ids)
	}
	// The span tree labels the view span with the same ids, which is
	// what `orchestra trace -pub` filters on across nodes.
	root := p.SpanTree()
	if len(root.Children) != 1 {
		t.Fatalf("span tree shape: %+v", root)
	}
	label := root.Children[0].Labels["trace_ids"]
	if !strings.Contains(label, traceID) || !strings.Contains(label, traceID2) {
		t.Fatalf("span label %q missing trace ids", label)
	}
}
