// Benchmarks regenerating the paper's evaluation (§6): one benchmark
// family per figure. The cases live in internal/benchharness (GoBenches)
// and are shared with cmd/benchfig -json, so the committed BENCH_*.json
// snapshots measure exactly what these benchmarks measure. Sizes are
// laptop-scale; run cmd/benchfig -scale N for the full parameter sweeps.
package orchestra

import (
	"strings"
	"testing"

	"orchestra/internal/benchharness"
)

// benchFig runs every registered case of one figure as sub-benchmarks.
func benchFig(b *testing.B, fig int) {
	for _, c := range benchharness.GoBenches() {
		if c.Fig != fig {
			continue
		}
		b.Run(c.Sub, c.Run)
	}
}

// benchFamily runs every registered case under one name prefix.
func benchFamily(b *testing.B, prefix string) {
	for _, c := range benchharness.GoBenches() {
		if !strings.HasPrefix(c.Name, prefix+"/") {
			continue
		}
		b.Run(c.Sub, c.Run)
	}
}

// BenchmarkFig4 compares the three deletion strategies at a 50% deletion
// ratio (the mid-point of Figure 4's x-axis).
func BenchmarkFig4(b *testing.B) { benchFig(b, 4) }

// BenchmarkFig5 measures "time to join the system": the initial full
// computation of all instances and provenance, per backend and dataset.
func BenchmarkFig5(b *testing.B) { benchFig(b, 5) }

// BenchmarkFig6 reports initial instance sizes (tuples and bytes) as
// benchmark metrics rather than timings.
func BenchmarkFig6(b *testing.B) { benchFig(b, 6) }

// BenchmarkFig7 is incremental insertion on the string dataset.
func BenchmarkFig7(b *testing.B) { benchFig(b, 7) }

// BenchmarkFig8 is incremental insertion on the integer dataset.
func BenchmarkFig8(b *testing.B) { benchFig(b, 8) }

// BenchmarkFig9 is incremental deletion scale-up (1% and 10% loads,
// integer and string datasets).
func BenchmarkFig9(b *testing.B) { benchFig(b, 9) }

// BenchmarkFig10 measures fixpoint computation as topology cycles are
// added (0–3), reporting tuples at fixpoint as a metric.
func BenchmarkFig10(b *testing.B) { benchFig(b, 10) }

// BenchmarkEvolveVsRebuild compares spec evolution's incremental mapping
// removal (provenance-driven rule deletion, the live-reconfiguration
// path) against tearing the view down and recomputing from the base —
// the cost a frozen-spec CDSS pays for any confederation change.
func BenchmarkEvolveVsRebuild(b *testing.B) { benchFamily(b, "EvolveVsRebuild") }

// BenchmarkExchangeAll measures confederation-wide exchange on a
// 16-peer Fig.5-style chain with 8 queued publications per peer: the
// serial one-apply-per-publication walk against publication coalescing
// (one net apply per view) and the full exchange scheduler (coalesced
// passes over a GOMAXPROCS-bounded worker pool). All variants end with
// observationally identical views — see the exchange equivalence and
// scheduler determinism property tests.
func BenchmarkExchangeAll(b *testing.B) { benchFamily(b, "ExchangeAll") }

// BenchmarkAblationProvTables compares §5's composite mapping table
// against the pre-optimization per-RHS-atom encoding on a multi-relation
// workload (the design choice DESIGN.md calls out; the paper reports the
// composite form "performed better").
func BenchmarkAblationProvTables(b *testing.B) { benchFamily(b, "AblationProvTables") }

// BenchmarkServing measures the read path under a mixed query/write
// load: baseline_* is the pre-optimization path (fixed-order plans, no
// cache, no declared indexes), optimized_* turns on cost-based join
// ordering, declared secondary indexes, and the provenance-invalidated
// query cache. ns/op is per served query, writes amortized in.
func BenchmarkServing(b *testing.B) { benchFamily(b, "Serving") }
