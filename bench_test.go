// Benchmarks regenerating the paper's evaluation (§6): one benchmark
// family per figure, built on the same internal/benchharness scenarios as
// cmd/benchfig. Sizes are laptop-scale; run cmd/benchfig -scale N for the
// full parameter sweeps.
package orchestra

import (
	"fmt"
	"testing"

	"orchestra/internal/benchharness"
	"orchestra/internal/core"
	"orchestra/internal/engine"
	"orchestra/internal/workload"
)

const benchSeed = 42

// fig4Config is Figure 4's setting: 5 peers, full mappings (full tgds,
// complete topology), string dataset.
func fig4Config() workload.Config {
	return workload.Config{
		Peers:    5,
		Topology: workload.TopologyComplete,
		AttrMode: workload.AttrsShared,
		Dataset:  workload.DatasetString,
		Seed:     benchSeed,
	}
}

// chainConfig is the §6.4 scale-up setting.
func chainConfig(peers int, ds workload.Dataset) workload.Config {
	return workload.Config{
		Peers:    peers,
		Topology: workload.TopologyChain,
		AttrMode: workload.AttrsRandom,
		Dataset:  ds,
		Seed:     benchSeed,
	}
}

// deletionLogs builds per-peer deletion logs covering `entries` entries.
func deletionLogs(w *workload.Workload, entries int) []core.EditLog {
	var logs []core.EditLog
	for _, peer := range w.PeerNames() {
		logs = append(logs, w.GenDeletions(peer, entries))
	}
	return logs
}

// BenchmarkFig4 compares the three deletion strategies at a 50% deletion
// ratio (the mid-point of Figure 4's x-axis).
func BenchmarkFig4(b *testing.B) {
	const base = 40
	for _, strategy := range []core.DeletionStrategy{
		core.DeleteProvenance, core.DeleteDRed, core.DeleteRecompute,
	} {
		b.Run(strategy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sc, err := benchharness.BuildScenario(fig4Config(), base, engine.BackendIndexed)
				if err != nil {
					b.Fatal(err)
				}
				logs := deletionLogs(sc.W, base/2)
				b.StartTimer()
				for _, log := range logs {
					if _, err := sc.View.ApplyEdits(log, strategy); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig5 measures "time to join the system": the initial full
// computation of all instances and provenance, per backend and dataset.
func BenchmarkFig5(b *testing.B) {
	const peers, base = 5, 30
	for _, series := range []struct {
		name string
		ds   workload.Dataset
		be   engine.Backend
	}{
		{"db2_integer", workload.DatasetInteger, engine.BackendHash},
		{"tukwila_integer", workload.DatasetInteger, engine.BackendIndexed},
		{"db2_string", workload.DatasetString, engine.BackendHash},
		{"tukwila_string", workload.DatasetString, engine.BackendIndexed},
	} {
		b.Run(series.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w, err := workload.New(chainConfig(peers, series.ds))
				if err != nil {
					b.Fatal(err)
				}
				logs := w.GenBase(base)
				v, err := core.NewView(w.Spec, "", core.Options{Backend: series.be})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, peer := range w.PeerNames() {
					if _, err := v.ApplyEdits(logs[peer], core.DeleteProvenance); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig6 reports initial instance sizes (tuples and bytes) as
// benchmark metrics rather than timings.
func BenchmarkFig6(b *testing.B) {
	const peers, base = 5, 30
	for _, ds := range []workload.Dataset{workload.DatasetInteger, workload.DatasetString} {
		b.Run(ds.String(), func(b *testing.B) {
			var rows, bytes float64
			for i := 0; i < b.N; i++ {
				sc, err := benchharness.BuildScenario(chainConfig(peers, ds), base, engine.BackendIndexed)
				if err != nil {
					b.Fatal(err)
				}
				rows = float64(sc.View.DB().TotalRows())
				bytes = float64(sc.View.DB().TotalBytes())
			}
			b.ReportMetric(rows, "tuples")
			b.ReportMetric(bytes, "dbbytes")
		})
	}
}

// benchInsertions is the §6.4 incremental-insertion scale-up core shared
// by the Figure 7 (string) and Figure 8 (integer) benchmarks.
func benchInsertions(b *testing.B, ds workload.Dataset) {
	const peers, base = 5, 30
	for _, pct := range []int{1, 10} {
		for _, be := range []engine.Backend{engine.BackendHash, engine.BackendIndexed} {
			name := fmt.Sprintf("%dpct_%s", pct, backendName(be))
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					sc, err := benchharness.BuildScenario(chainConfig(peers, ds), base, be)
					if err != nil {
						b.Fatal(err)
					}
					n := base * pct / 100
					if n < 1 {
						n = 1
					}
					var logs []core.EditLog
					for _, peer := range sc.W.PeerNames() {
						logs = append(logs, sc.W.GenInsertions(peer, n))
					}
					b.StartTimer()
					for _, log := range logs {
						if _, err := sc.View.ApplyEdits(log, core.DeleteProvenance); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

func backendName(be engine.Backend) string {
	if be == engine.BackendHash {
		return "db2"
	}
	return "tukwila"
}

// BenchmarkFig7 is incremental insertion on the string dataset.
func BenchmarkFig7(b *testing.B) { benchInsertions(b, workload.DatasetString) }

// BenchmarkFig8 is incremental insertion on the integer dataset.
func BenchmarkFig8(b *testing.B) { benchInsertions(b, workload.DatasetInteger) }

// BenchmarkFig9 is incremental deletion scale-up (1% and 10% loads,
// integer and string datasets).
func BenchmarkFig9(b *testing.B) {
	const peers, base = 5, 30
	for _, ds := range []workload.Dataset{workload.DatasetInteger, workload.DatasetString} {
		for _, pct := range []int{1, 10} {
			b.Run(fmt.Sprintf("%dpct_%s", pct, ds), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					sc, err := benchharness.BuildScenario(chainConfig(peers, ds), base, engine.BackendIndexed)
					if err != nil {
						b.Fatal(err)
					}
					n := base * pct / 100
					if n < 1 {
						n = 1
					}
					logs := deletionLogs(sc.W, n)
					b.StartTimer()
					for _, log := range logs {
						if _, err := sc.View.ApplyEdits(log, core.DeleteProvenance); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkAblationProvTables compares §5's composite mapping table
// against the pre-optimization per-RHS-atom encoding on a multi-relation
// workload (the design choice DESIGN.md calls out; the paper reports the
// composite form "performed better").
func BenchmarkAblationProvTables(b *testing.B) {
	const peers, base = 4, 30
	cfg := workload.Config{
		Peers:          peers,
		MaxRelsPerPeer: 3,
		Topology:       workload.TopologyChain,
		AttrMode:       workload.AttrsRandom,
		Dataset:        workload.DatasetInteger,
		Seed:           benchSeed,
	}
	for _, split := range []bool{false, true} {
		name := "composite"
		if split {
			name = "split"
		}
		b.Run(name, func(b *testing.B) {
			var provRows float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w, err := workload.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				logs := w.GenBase(base)
				v, err := core.NewView(w.Spec, "", core.Options{SplitProvTables: split})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, peer := range w.PeerNames() {
					if _, err := v.ApplyEdits(logs[peer], core.DeleteProvenance); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				provRows = 0
				for _, n := range v.DB().Names() {
					if len(n) > 2 && n[:2] == "p$" {
						provRows += float64(v.DB().Table(n).Len())
					}
				}
				b.StartTimer()
			}
			b.ReportMetric(provRows, "provrows")
		})
	}
}

// BenchmarkFig10 measures fixpoint computation as topology cycles are
// added (0–3), reporting tuples at fixpoint as a metric.
func BenchmarkFig10(b *testing.B) {
	const base = 30
	for cycles := 0; cycles <= 3; cycles++ {
		b.Run(fmt.Sprintf("cycles%d", cycles), func(b *testing.B) {
			var tuples float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := workload.Config{
					Peers:        5,
					Topology:     workload.TopologyRandom,
					AttrMode:     workload.AttrsNested,
					AvgNeighbors: 2,
					ExtraCycles:  cycles,
					Dataset:      workload.DatasetInteger,
					Seed:         benchSeed,
				}
				w, err := workload.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				logs := w.GenBase(base)
				v, err := core.NewView(w.Spec, "", core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, peer := range w.PeerNames() {
					if _, err := v.ApplyEdits(logs[peer], core.DeleteProvenance); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				tuples = float64(v.DB().TotalRows())
				b.StartTimer()
			}
			b.ReportMetric(tuples, "tuples")
		})
	}
}
