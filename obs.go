package orchestra

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/exchange"
	"orchestra/internal/logstore"
	"orchestra/internal/obs"
	"orchestra/internal/statestore"
)

// The operations-plane vocabulary (see internal/obs). An Observability
// value bundles a metrics registry with a pass tracer; attach one to a
// System with WithObservability and to a BusServer with EnableMetrics,
// then serve the registry as Prometheus text (Registry().WritePrometheus)
// and the tracer's recent passes as JSON span trees (cmd/orchestrad does
// both, on /metrics and /debug/trace).
type (
	// Observability is the metrics registry + pass tracer bundle.
	Observability = obs.Observability
	// MetricsRegistry is the registry half: counters, gauges, and
	// histograms with Prometheus text exposition.
	MetricsRegistry = obs.Registry
	// ExchangeTrace is the structured trace of one exchange pass.
	ExchangeTrace = obs.PassTrace
	// ViewPass is one view's slice of an ExchangeTrace.
	ViewPass = obs.ViewPass
	// TraceSpan is one node of a rendered span tree.
	TraceSpan = obs.Span
	// SpanContext is a publication's lineage identity: the trace id
	// minted at publish and carried across processes.
	SpanContext = obs.SpanContext
	// PubRecord is the publish-side lineage record of one accepted
	// publication (the BusServer records one per publish).
	PubRecord = obs.PubRecord
	// SlowQuery is one captured slow-query record: query text, phase
	// breakdown, dependency pins, and the chosen plan.
	SlowQuery = obs.QueryStats
)

// NewTraceContext attaches a fresh publication trace to ctx and returns
// the trace id, so a caller can publish and then follow the publication
// through `orchestra trace -pub <id>` / /debug/trace?pub=<id>. If ctx
// already carries a span (e.g. a server handler that parsed an incoming
// traceparent header), that trace is kept and its id returned.
func NewTraceContext(ctx context.Context) (context.Context, string) {
	ctx, sc := obs.EnsureSpan(ctx)
	return ctx, sc.TraceID
}

// TraceIDFromContext returns the lineage trace id on ctx, or "".
func TraceIDFromContext(ctx context.Context) string {
	return obs.TraceIDFromContext(ctx)
}

// NewObservability builds a fresh operations plane retaining the last
// traceCap exchange traces (<= 0 selects the default of 64). Use one
// Observability per System: per-system gauges (bus horizon, checkpoint
// age) are registered against the bundle's registry, and a second
// System registering the same names would silently share series.
func NewObservability(traceCap int) *Observability { return obs.NewObservability(traceCap) }

// systemObs is the System's pre-resolved instrument bundle. Everything
// here is either an atomic-emission instrument or a plain atomic the
// GaugeFuncs read, so updating it from exchange hot paths never locks;
// registration (which does lock and allocate) happens once, in
// newSystemObs / ensureView, always outside s.mu critical sections. A
// nil *systemObs disables everything: all methods are nil-safe.
type systemObs struct {
	bundle *obs.Observability

	// Per-pass instruments, pre-resolved per kind ("exchange" /
	// "exchange_all") so finishPass never touches the registry.
	passSeconds  map[string]*obs.Histogram
	passes       map[string]*obs.Counter
	passFailures map[string]*obs.Counter

	pubsConsumed    *obs.Counter
	editsIn         *obs.Counter
	editsCancelled  *obs.Counter
	cancellation    *obs.Gauge
	tuplesDeleted   *obs.Counter
	provRowsDeleted *obs.Counter
	derived         *obs.Counter

	// Delivery-path counters: how views learned about publications.
	// fetchCalls/fetchPubs count pull round trips and the publications
	// they carried; pushDeltas counts subscription-delivered deltas an
	// exchange applied without fetching; pushPasses counts passes that
	// ran entirely off the push buffer.
	fetchCalls *obs.Counter
	fetchPubs  *obs.Counter
	pushDeltas *obs.Counter
	pushPasses *obs.Counter

	// Read-path query cache counters, shared across views.
	qcHits, qcMisses, qcEvictions *obs.Counter

	// Per-query latency histograms, pre-resolved per cache outcome
	// ("hit" / "miss" / "uncached"), plus the slow-query ring and its
	// threshold in nanoseconds (0 disables capture).
	queryDur map[string]*obs.Histogram
	slowRing *obs.SlowQueryRing
	slowNS   int64

	// horizon is the highest bus length any pass (or Stats poll) has
	// observed; per-view bus-lag gauges read it against the view's
	// mirrored cursor.
	horizon atomic.Int64

	mu    sync.Mutex
	views map[string]*viewObs
	// horizonShards holds the highest per-shard position any pass has
	// observed; per-(view,shard) lag gauges read it against the view's
	// shard mirror. Cells are created under mu, then updated atomically.
	horizonShards map[string]*atomic.Int64
}

// viewObs mirrors one view's cursor into atomics so GaugeFuncs can
// read it without the view's lock.
type viewObs struct {
	cursor atomic.Int64
	// shards mirrors the cursor's per-shard positions (cells created
	// under systemObs.mu, updated atomically).
	shards map[string]*atomic.Int64
}

const passKindExchange, passKindExchangeAll, passKindExchangePush = "exchange", "exchange_all", "exchange_push"

// newSystemObs registers the System's pass-level instruments in the
// bundle's registry.
func newSystemObs(o *obs.Observability) *systemObs {
	r := o.Registry()
	x := &systemObs{
		bundle:       o,
		passSeconds:   make(map[string]*obs.Histogram, 3),
		passes:        make(map[string]*obs.Counter, 3),
		passFailures:  make(map[string]*obs.Counter, 3),
		views:         make(map[string]*viewObs),
		horizonShards: make(map[string]*atomic.Int64),
	}
	for _, kind := range []string{passKindExchange, passKindExchangeAll, passKindExchangePush} {
		lbl := obs.L("kind", kind)
		x.passSeconds[kind] = r.Histogram("orchestra_exchange_pass_duration_seconds",
			"Wall clock of one update-exchange pass.", obs.DurationBuckets(), lbl)
		x.passes[kind] = r.Counter("orchestra_exchange_passes_total",
			"Update-exchange passes completed (including failed ones).", lbl)
		x.passFailures[kind] = r.Counter("orchestra_exchange_pass_failures_total",
			"Update-exchange passes that returned an error.", lbl)
	}
	x.pubsConsumed = r.Counter("orchestra_exchange_publications_total",
		"Bus publications consumed by exchange passes.")
	x.editsIn = r.Counter("orchestra_exchange_edits_total",
		"Edit-log entries entering net-effect coalescing.")
	x.editsCancelled = r.Counter("orchestra_exchange_edits_cancelled_total",
		"Edits net-effect coalescing discharged without propagation.")
	x.cancellation = r.Gauge("orchestra_coalesce_cancellation_ratio",
		"Cancellation ratio of the most recent exchange that saw edits.")
	x.tuplesDeleted = r.Counter("orchestra_exchange_tuples_deleted_total",
		"Derived tuples removed by deletion propagation.")
	x.provRowsDeleted = r.Counter("orchestra_exchange_prov_rows_deleted_total",
		"Provenance rows removed by deletion propagation.")
	x.derived = r.Counter("orchestra_engine_derived_total",
		"Tuples derived by engine fixpoints during exchange.")
	x.fetchCalls = r.Counter("orchestra_exchange_fetch_calls_total",
		"Bus fetch round trips made by exchange passes.")
	x.fetchPubs = r.Counter("orchestra_exchange_fetch_publications_total",
		"Publications delivered to exchange passes by bus fetches (pull).")
	x.pushDeltas = r.Counter("orchestra_exchange_push_deltas_total",
		"Publications delivered to exchange passes by subscriptions (push).")
	x.pushPasses = r.Counter("orchestra_exchange_push_passes_total",
		"Exchange passes served entirely from the push buffer, no fetch.")
	x.qcHits = r.Counter("orchestra_query_cache_hits",
		"Query results served from the provenance-invalidated result cache.")
	x.qcMisses = r.Counter("orchestra_query_cache_misses",
		"Queries evaluated because no valid cache entry existed.")
	x.qcEvictions = r.Counter("orchestra_query_cache_evictions",
		"Query cache entries evicted, by capacity or staleness.")
	x.queryDur = make(map[string]*obs.Histogram, 3)
	for _, oc := range []string{"hit", "miss", "uncached"} {
		x.queryDur[oc] = r.Histogram("orchestra_query_duration_seconds",
			"Wall clock of one read-path query, by cache outcome.",
			obs.DurationBuckets(), obs.L("outcome", oc))
	}
	x.slowRing = o.SlowQueries()
	r.GaugeFunc("orchestra_bus_horizon",
		"Highest bus publication count this system has observed.",
		func() float64 { return float64(x.horizon.Load()) })
	return x
}

// ensureView returns (registering on first sight) the owner's cursor
// mirror and its gauges. Idempotent and nil-safe; callers invoke it
// outside s.mu because registration locks the registry.
func (x *systemObs) ensureView(owner string) *viewObs {
	if x == nil {
		return nil
	}
	x.mu.Lock()
	vo, ok := x.views[owner]
	if !ok {
		vo = &viewObs{}
		x.views[owner] = vo
	}
	x.mu.Unlock()
	if !ok {
		label := owner
		if label == "" {
			label = "(global)"
		}
		r := x.bundle.Registry()
		r.GaugeFunc("orchestra_view_cursor",
			"Bus cursor of the view's last completed exchange.",
			func() float64 { return float64(vo.cursor.Load()) }, obs.L("view", label))
		r.GaugeFunc("orchestra_bus_lag",
			"Publications on the bus the view has not yet applied.",
			func() float64 { return max(float64(x.horizon.Load()-vo.cursor.Load()), 0) },
			obs.L("view", label))
	}
	return vo
}

// queryCacheMetrics resolves the cache counter bundle views attach to
// their query caches; the zero value (observability off) is nil-safe.
func (x *systemObs) queryCacheMetrics() core.QueryCacheMetrics {
	if x == nil {
		return core.QueryCacheMetrics{}
	}
	return core.QueryCacheMetrics{Hits: x.qcHits, Misses: x.qcMisses, Evictions: x.qcEvictions}
}

// observeQuery accounts one completed read-path query: the outcome's
// latency histogram, and — past the slow threshold — the ring. Runs on
// the query path but only when observability is attached; emission is
// one atomic histogram observe plus (rarely) a ring append.
func (x *systemObs) observeQuery(st obs.QueryStats) {
	if x == nil {
		return
	}
	if h, ok := x.queryDur[st.Outcome]; ok {
		h.Observe(float64(st.WallNS) / 1e9)
	}
	if x.slowNS > 0 && st.WallNS >= x.slowNS {
		x.slowRing.Add(st)
	}
}

// queryObserver resolves the observer callback and slow threshold views
// attach to their query paths; the zero value (observability off) keeps
// the instrumentation sites compiled-in no-ops.
func (x *systemObs) queryObserver() (func(obs.QueryStats), time.Duration) {
	if x == nil {
		return nil, 0
	}
	return x.observeQuery, time.Duration(x.slowNS)
}

// raiseHorizon lifts the observed bus length monotonically.
func (x *systemObs) raiseHorizon(n int64) {
	if x == nil {
		return
	}
	for {
		cur := x.horizon.Load()
		if n <= cur || x.horizon.CompareAndSwap(cur, n) {
			return
		}
	}
}

// raiseCell lifts one atomic cell monotonically.
func raiseCell(c *atomic.Int64, n int64) {
	for {
		cur := c.Load()
		if n <= cur || c.CompareAndSwap(cur, n) {
			return
		}
	}
}

// recordShards mirrors a cursor's per-shard positions into the view's
// shard cells (registering the orchestra_shard_lag gauge on first
// sight of each (view,shard) pair) and lifts the shard horizons.
func (x *systemObs) recordShards(owner string, cursor core.Cursor) {
	if x == nil {
		return
	}
	shards := cursor.Shards()
	if len(shards) == 0 {
		return
	}
	label := owner
	if label == "" {
		label = "(global)"
	}
	for _, shard := range shards {
		pos := int64(cursor.Shard(shard))
		x.mu.Lock()
		vo := x.views[owner]
		if vo == nil {
			vo = &viewObs{}
			x.views[owner] = vo
		}
		if vo.shards == nil {
			vo.shards = make(map[string]*atomic.Int64)
		}
		cell, ok := vo.shards[shard]
		if !ok {
			cell = &atomic.Int64{}
			vo.shards[shard] = cell
		}
		hcell, hok := x.horizonShards[shard]
		if !hok {
			hcell = &atomic.Int64{}
			x.horizonShards[shard] = hcell
		}
		x.mu.Unlock()
		if !ok {
			// Register outside x.mu: registration locks the registry.
			x.bundle.Registry().GaugeFunc("orchestra_shard_lag",
				"Publications on one bus shard the view has not yet applied.",
				func() float64 { return max(float64(hcell.Load()-cell.Load()), 0) },
				obs.L("view", label), obs.L("shard", shard))
		}
		raiseCell(cell, pos)
		raiseCell(hcell, pos)
	}
}

// recordView accounts one view's completed (or failed) exchange pass:
// counters, the cursor and shard mirrors, and — when the pass is
// traced — a ViewPass appended to the trace. Runs under the view's
// lock but never under s.mu. The view's wall clock is taken from start
// after the emission work, so first-sight costs (view/shard gauge
// registration) are attributed to the view pass rather than widening
// the gap between view wall and pass wall.
func (x *systemObs) recordView(pass *obs.PassTrace, owner string, st ApplyStats, start time.Time, ckpt time.Duration, cursor core.Cursor, err error) {
	if x == nil {
		return
	}
	vo := x.ensureView(owner)
	vo.cursor.Store(int64(cursor.Total()))
	x.raiseHorizon(int64(cursor.Total()))
	x.recordShards(owner, cursor)
	x.fetchCalls.Add(int64(st.FetchCalls))
	x.fetchPubs.Add(int64(st.FetchPublications))
	x.pushDeltas.Add(int64(st.PushDeltas))
	if st.PushDeltas > 0 && st.FetchCalls == 0 {
		x.pushPasses.Inc()
	}
	x.pubsConsumed.Add(int64(st.Publications))
	x.editsIn.Add(int64(st.EditsIn))
	x.editsCancelled.Add(int64(st.EditsCancelled))
	if st.EditsIn > 0 {
		x.cancellation.Set(st.CancellationRatio())
	}
	x.tuplesDeleted.Add(int64(st.TuplesDeleted))
	x.provRowsDeleted.Add(int64(st.ProvRowsDeleted))
	x.derived.Add(int64(st.Engine.Derived))
	if pass == nil {
		return
	}
	vp := obs.ViewPass{
		Owner:             owner,
		WallNS:            time.Since(start).Nanoseconds(),
		Publications:      st.Publications,
		FetchNS:           st.FetchNS,
		EditsIn:           st.EditsIn,
		EditsCancelled:    st.EditsCancelled,
		CancellationRatio: st.CancellationRatio(),
		NetEffectNS:       st.NetEffectNS,
		DeleteNS:          st.DeleteNS,
		TuplesDeleted:     st.TuplesDeleted,
		ProvRowsDeleted:   st.ProvRowsDeleted,
		Checked:           st.Checked,
		Rederived:         st.Rederived,
		InsertNS:          st.InsertNS,
		InsL:              st.InsL,
		DelL:              st.DelL,
		InsR:              st.InsR,
		DelR:              st.DelR,
		Rounds:            st.Engine.Iterations,
		Derived:           st.Engine.Derived,
		Probes:            st.Engine.Probes,
		RuleFires:         st.Engine.RuleFires,
		EngineNS:          st.Engine.EvalNS,
		CheckpointNS:      ckpt.Nanoseconds(),
		TraceIDs:          st.TraceIDs,
	}
	if err != nil {
		vp.Err = err.Error()
	}
	pass.AddView(vp)
}

// finishPass closes a traced pass: wall clock into the kind's
// histogram, the trace into the ring.
func (x *systemObs) finishPass(pass *obs.PassTrace, kind string, err error) {
	if x == nil {
		return
	}
	x.passes[kind].Inc()
	if err != nil {
		x.passFailures[kind].Inc()
	}
	if p := pass.Finish(x.bundle.Tracer()); p != nil {
		x.passSeconds[kind].Observe(float64(p.WallNS) / 1e9)
	}
}

// startPass opens a trace for one pass, or returns nil when
// observability is off (every downstream consumer is nil-safe).
func (x *systemObs) startPass(kind string) *obs.PassTrace {
	if x == nil {
		return nil
	}
	return obs.StartPass(kind)
}

// initObs attaches an operations plane to a freshly built System: the
// pass-level instruments, the scheduler/statestore/logstore hooks, and
// cursor mirrors for every recovered view. Runs inside New, before the
// System is shared, so no locking is needed.
func (s *System) initObs(o *Observability, slowQuery time.Duration) {
	x := newSystemObs(o)
	switch {
	case slowQuery > 0:
		x.slowNS = slowQuery.Nanoseconds()
	case slowQuery == 0:
		x.slowNS = defaultSlowQueryThreshold.Nanoseconds()
	}
	s.obsx = x
	r := o.Registry()
	s.sched.SetMetrics(exchange.Metrics{
		QueueDepth: r.Gauge("orchestra_sched_queue_depth",
			"Exchange tasks accepted by the scheduler but not yet started."),
		BusyWorkers: r.Gauge("orchestra_sched_busy_workers",
			"Exchange tasks currently executing."),
		TaskSeconds: r.Histogram("orchestra_sched_task_duration_seconds",
			"Wall clock of one scheduled exchange task.", obs.DurationBuckets()),
		TaskFailures: r.Counter("orchestra_sched_task_failures_total",
			"Scheduled exchange tasks that returned an error."),
	})
	if st := s.store; st != nil {
		st.SetMetrics(statestore.Metrics{
			CheckpointSeconds: r.Histogram("orchestra_checkpoint_duration_seconds",
				"Wall clock of one view checkpoint.", obs.DurationBuckets()),
			CheckpointBytes: r.Histogram("orchestra_checkpoint_bytes",
				"Size of one view snapshot payload.", obs.SizeBuckets()),
			CheckpointFailures: r.Counter("orchestra_checkpoint_failures_total",
				"View checkpoints that failed."),
		})
		r.GaugeFunc("orchestra_checkpoint_age_seconds",
			"Seconds since the last successful checkpoint (store open counts as one).",
			func() float64 { return time.Since(st.LastSaveTime()).Seconds() })
	}
	if s.ownBus != nil {
		s.ownBus.SetMetrics(busAppendMetrics(r))
		x.horizon.Store(int64(s.ownBus.Len()))
	}
	for owner, h := range s.views {
		x.ensureView(owner).cursor.Store(int64(h.cursor.Total()))
		x.recordShards(owner, h.cursor)
		// Recovered views were built before the operations plane existed;
		// attach their cache counters and query observers now.
		h.view.SetQueryCacheMetrics(x.queryCacheMetrics())
		h.view.SetQueryObserver(x.queryObserver())
	}
}

// defaultSlowQueryThreshold is the latency past which a query is
// captured into the slow-query ring unless WithSlowQueryThreshold says
// otherwise.
const defaultSlowQueryThreshold = 250 * time.Millisecond

// SlowQueries returns the most recent n captured slow queries, newest
// first (nil without WithObservability). See WithSlowQueryThreshold.
func (s *System) SlowQueries(n int) []SlowQuery {
	if s.obsx == nil {
		return nil
	}
	return s.obsx.slowRing.Last(n)
}

// busAppendMetrics resolves the durable-append instruments. Both the
// System's own FileBus and a BusServer's persistence register the same
// names, so a node running both in one registry shares the series —
// appends are appends, whichever side performed them.
func busAppendMetrics(r *obs.Registry) logstore.Metrics {
	return logstore.Metrics{
		AppendSeconds: r.Histogram("orchestra_bus_append_duration_seconds",
			"Wall clock of one durable publication append (fsync included).", obs.DurationBuckets()),
		AppendBytes: r.Counter("orchestra_bus_append_bytes_total",
			"Bytes durably appended to the publication log."),
		AppendFailures: r.Counter("orchestra_bus_append_failures_total",
			"Durable publication appends that failed."),
	}
}

// Observability returns the bundle attached via WithObservability, or
// nil when the System runs without one.
func (s *System) Observability() *Observability {
	if s.obsx == nil {
		return nil
	}
	return s.obsx.bundle
}

// ViewStat is one view's row of a SystemStats snapshot.
type ViewStat struct {
	Owner string `json:"owner"`
	// Cursor is the scalar (total) bus position; Position is the typed
	// cursor's durable form, with the per-shard breakdown ("" when the
	// view was busy and only the scalar mirror was readable).
	Cursor   int    `json:"cursor"`
	Position string `json:"position,omitempty"`
	// Pending is the number of bus publications past the cursor.
	Pending int `json:"pending"`
	// SinceCheckpoint counts publications applied since the view's last
	// checkpoint (-1 when the view was busy; see Busy).
	SinceCheckpoint int `json:"since_checkpoint"`
	// Busy marks a view whose lock an in-flight operation held when the
	// snapshot was taken: Cursor then comes from the observability
	// mirror (last completed exchange; 0 without WithObservability) and
	// SinceCheckpoint is unknown.
	Busy bool `json:"busy,omitempty"`
}

// SystemStats is System.Stats' point-in-time snapshot of the node's
// operational state.
type SystemStats struct {
	// BusLen is the publication count on the System's bus.
	BusLen int `json:"bus_len"`
	// SpecGeneration counts applied spec-evolution operations.
	SpecGeneration int `json:"spec_generation"`
	// Passes counts exchange passes traced so far (0 without
	// WithObservability).
	Passes uint64 `json:"passes"`
	// LastCheckpoint is the time of the last successful checkpoint
	// (zero without WithPersistence; store open counts as one).
	LastCheckpoint time.Time `json:"last_checkpoint"`
	// Views lists every materialized view, sorted by owner (the global
	// view's "" first).
	Views []ViewStat `json:"views"`
}

// Stats snapshots the System's operational state: bus length, per-view
// cursors and backlog, and checkpoint recency. It never waits on a
// busy view — a view whose lock is held mid-exchange is reported with
// Busy set and its cursor read from the observability mirror — so it
// is safe to call from a metrics scrape while exchanges run. As a side
// effect it refreshes the bus-horizon gauge behind the per-view
// orchestra_bus_lag series.
func (s *System) Stats(ctx context.Context) (SystemStats, error) {
	n, err := s.BusLen(ctx)
	if err != nil {
		return SystemStats{}, err
	}
	out := SystemStats{BusLen: n, SpecGeneration: s.SpecGeneration()}
	if s.obsx != nil {
		out.Passes = s.obsx.bundle.Tracer().Count()
		s.obsx.raiseHorizon(int64(n))
	}
	if s.store != nil {
		out.LastCheckpoint = s.store.LastSaveTime()
	}
	s.mu.RLock()
	handles := make(map[string]*viewHandle, len(s.views))
	owners := make([]string, 0, len(s.views))
	for owner, h := range s.views {
		owners = append(owners, owner)
		handles[owner] = h
	}
	s.mu.RUnlock()
	sort.Strings(owners)
	for _, owner := range owners {
		h := handles[owner]
		vs := ViewStat{Owner: owner}
		if h.mu.TryLock() {
			vs.Cursor = h.cursor.Total()
			vs.Position = h.cursor.String()
			vs.SinceCheckpoint = h.sinceCkpt
			h.mu.Unlock()
		} else {
			vs.Busy = true
			vs.SinceCheckpoint = -1
			if s.obsx != nil {
				vs.Cursor = int(s.obsx.ensureView(owner).cursor.Load())
			}
		}
		vs.Pending = max(n-vs.Cursor, 0)
		out.Views = append(out.Views, vs)
	}
	return out, nil
}
