// Bioshare: a synthetic bioinformatics confederation exercising the full
// CDSS lifecycle at workload scale (paper §2 and §6.1), on the public
// orchestra API.
//
// Generates a 4-peer confederation from the SWISS-PROT-style workload
// generator, then simulates several epochs of collaboration: peers insert
// and curate data offline, publish their logs, and periodically run
// update exchange — each under its own trust policy. Shows how instances,
// inputs, and rejections evolve, and how a trust condition diverges one
// peer's view from the global view.
//
// Run with: go run ./examples/bioshare
package main

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

func main() {
	ctx := context.Background()
	w, err := orchestra.NewWorkload(orchestra.WorkloadConfig{
		Peers:    4,
		Topology: orchestra.TopologyChain,
		Dataset:  orchestra.DatasetInteger,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Confederation ==")
	for _, p := range w.Spec.Universe.Peers() {
		fmt.Printf("peer %s:\n", p.Name)
		for _, r := range p.Schema.Relations() {
			fmt.Printf("  %s\n", r)
		}
	}
	for _, m := range w.Spec.Mappings {
		fmt.Printf("mapping %s: %d source atom(s) -> %d target atom(s), %d existential(s)\n",
			m.ID, len(m.LHS), len(m.RHS), len(m.ExistentialVars()))
	}

	// p3 distrusts everything p1 contributes (token-level trust).
	pol := orchestra.NewTrustPolicy("p3")
	pol.DistrustPeer("p1")

	sys, err := orchestra.New(w.Spec, orchestra.WithTrustFor("p3", pol))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Epochs ==")
	for epoch := 1; epoch <= 3; epoch++ {
		// Offline edits: everyone inserts; from epoch 2, p1 also curates
		// (deletes some of its earlier contributions).
		for _, peer := range w.PeerNames() {
			log1 := w.GenInsertions(peer, 6)
			if epoch >= 2 && peer == "p1" {
				log1 = append(log1, w.GenDeletions("p1", 2)...)
			}
			if err := sys.Publish(ctx, peer, log1); err != nil {
				log.Fatal(err)
			}
		}
		// Everyone exchanges.
		statsByPeer, err := sys.ExchangeAll(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d:\n", epoch)
		for _, peer := range w.PeerNames() {
			var localRows, inputRows, outputRows int
			for _, rel := range w.Spec.Universe.Peer(peer).Schema.Relations() {
				sizes, err := sys.TableSizes(peer, rel.Name)
				if err != nil {
					log.Fatal(err)
				}
				localRows += sizes.Local
				inputRows += sizes.Input
				outputRows += sizes.Instance
			}
			st := statsByPeer[peer]
			fmt.Printf("  %s: local=%d input=%d instance=%d  (+%d tuples derived, %d deleted this exchange)\n",
				peer, localRows, inputRows, outputRows, st.Engine.Derived, st.TuplesDeleted)
		}
	}

	// Trust divergence: p3's view (distrusting p1) vs p2's view.
	fmt.Println("\n== Trust divergence ==")
	rel3 := w.Spec.Universe.Peer("p3").Schema.Relations()[0].Name
	s3, err := sys.TableSizes("p3", rel3)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := sys.TableSizes("p2", rel3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p3's own instance of %s: %d rows under its distrust-p1 policy\n", rel3, s3.Instance)
	fmt.Printf("p2's copy of %s (trusting everyone): %d rows\n", rel3, s2.Instance)
	if s3.Instance < s2.Instance {
		fmt.Println("=> p3 sees fewer tuples: p1's contributions were filtered by trust.")
	}
}
