// Durability: crash-safe checkpoint and recovery with WithPersistence.
//
// The program re-executes itself as a worker that runs a durable
// System out of a state directory, checkpoints mid-history, publishes
// more edits, tears the durable bus log mid-append, and then SIGKILLs
// itself — no deferred close, no final checkpoint, exactly what a
// power cut leaves behind. The parent then reopens the same state
// directory and checks the recovery contract:
//
//   - the torn tail of the publication log is repaired on open;
//   - the view is restored from its snapshot at the persisted cursor;
//   - the recovery exchange fetches and applies ONLY the publications
//     past that cursor (asserted via bus fetch counts and ApplyStats);
//   - the recovered instances and provenance are identical to a fresh
//     system that replays the full history.
//
// Run with: go run ./examples/durability
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync/atomic"

	"orchestra"
)

const cdss = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)
`

// The published history: three publications before the checkpoint,
// two after it (including a curation deletion, so recovery exercises
// provenance-driven deletion propagation too).
type pub struct {
	peer string
	log  orchestra.EditLog
}

var beforeCheckpoint = []pub{
	{"PGUS", orchestra.EditLog{
		orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3)),
		orchestra.Ins("G", orchestra.MakeTuple(3, 5, 2)),
	}},
	{"PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(3, 5))}},
	{"PuBio", orchestra.EditLog{orchestra.Ins("U", orchestra.MakeTuple(2, 5))}},
}

var afterCheckpoint = []pub{
	{"PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(7, 8, 9))}},
	{"PBioSQL", orchestra.EditLog{orchestra.Del("B", orchestra.MakeTuple(3, 2))}},
}

const (
	roleEnv = "ORCHESTRA_DURABILITY_ROLE"
	dirEnv  = "ORCHESTRA_DURABILITY_DIR"
)

func main() {
	if os.Getenv(roleEnv) == "worker" {
		worker(os.Getenv(dirEnv))
		return // unreachable: worker ends in SIGKILL
	}

	dir, err := os.MkdirTemp("", "orchestra-durability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Phase 1: the worker builds durable state and dies hard.
	fmt.Println("== Phase 1: durable worker, hard-killed mid-append ==")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), roleEnv+"=worker", dirEnv+"="+dir)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	err = cmd.Run()
	if err == nil {
		log.Fatal("worker exited cleanly; expected it to SIGKILL itself")
	}
	fmt.Printf("worker died hard as planned (%v) — no clean close, no final checkpoint\n\n", err)

	// Phase 2: recover from the state directory.
	fmt.Println("== Phase 2: restart with WithPersistence ==")
	spec := parseSpec()
	bus, err := orchestra.OpenShardedFileBus(filepath.Join(dir, "bus.shards"), filepath.Join(dir, "bus.olg"))
	if err != nil {
		log.Fatal(err)
	}
	if bus.RepairedBytes() == 0 {
		log.Fatal("expected the bus log's torn tail to need repair")
	}
	fmt.Printf("bus log: repaired %d-byte torn tail; %d publications survived\n", bus.RepairedBytes(), bus.Len())
	counting := &countingBus{bus: bus}
	sys, err := orchestra.New(spec, orchestra.WithBus(counting), orchestra.WithPersistence(dir))
	if err != nil {
		log.Fatal(err)
	}

	views, err := sys.PersistedViews()
	if err != nil {
		log.Fatal(err)
	}
	if len(views) != 1 || views[0].Cursor != len(beforeCheckpoint) {
		log.Fatalf("persisted views = %+v, want one view at cursor %d", views, len(beforeCheckpoint))
	}
	ctx := context.Background()
	pending, err := sys.Pending(ctx, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered view at cursor %d (snapshot generation %d), %d publications pending\n",
		views[0].Cursor, views[0].Generation, pending)
	if pending != len(afterCheckpoint) {
		log.Fatalf("pending = %d, want %d (only the post-checkpoint publications)", pending, len(afterCheckpoint))
	}

	stats, err := sys.Exchange(ctx, "")
	if err != nil {
		log.Fatal(err)
	}
	// The recovery exchange must replay only what the checkpoint had not
	// yet seen: two publications, not the full history of five.
	if got := counting.fetched.Load(); got != int64(len(afterCheckpoint)) {
		log.Fatalf("recovery exchange fetched %d publications from the bus, want %d", got, len(afterCheckpoint))
	}
	if stats.InsL != 1 || stats.InsR != 1 {
		log.Fatalf("recovery exchange ApplyStats = %+v, want exactly the tail's 1 insertion + 1 curation rejection", stats)
	}
	fmt.Printf("recovery exchange fetched %d publications, applied %d insertions and %d curation rejections\n\n",
		counting.fetched.Load(), stats.InsL, stats.InsR)

	// Phase 3: a fresh system replays the full history; both must agree.
	fmt.Println("== Phase 3: recovered state vs. full re-exchange ==")
	fresh, err := orchestra.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range append(append([]pub{}, beforeCheckpoint...), afterCheckpoint...) {
		if err := fresh.Publish(ctx, p.peer, p.log); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := fresh.Exchange(ctx, ""); err != nil {
		log.Fatal(err)
	}
	recoveredDigest, freshDigest := digest(sys), digest(fresh)
	fmt.Print(recoveredDigest)
	if recoveredDigest != freshDigest {
		log.Fatalf("recovered state diverged from full replay:\n-- recovered --\n%s-- fresh --\n%s", recoveredDigest, freshDigest)
	}
	fmt.Println("\nrecovered instances and provenance match a fresh full exchange — durability holds")
}

// worker runs the pre-crash life of the system: exchange + checkpoint,
// more publications, a torn append, then SIGKILL.
func worker(dir string) {
	ctx := context.Background()
	sys, err := orchestra.New(parseSpec(), orchestra.WithPersistence(dir))
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range beforeCheckpoint {
		if err := sys.Publish(ctx, p.peer, p.log); err != nil {
			log.Fatal(err)
		}
	}
	// The default policy checkpoints after the exchange, while still
	// holding the view's lock: snapshot and cursor commit together.
	if _, err := sys.Exchange(ctx, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker: exchanged and checkpointed %d publications\n", len(beforeCheckpoint))

	// More publications land on the durable bus, but the view never
	// exchanges them: the checkpoint stays at the earlier cursor.
	for _, p := range afterCheckpoint {
		if err := sys.Publish(ctx, p.peer, p.log); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("worker: published %d more without exchanging\n", len(afterCheckpoint))

	// Simulate the crash cutting a sixth append short: a frame header
	// claiming 512 bytes with only a fragment behind it, on one of the
	// sharded bus's per-peer segment files.
	segs, err := filepath.Glob(filepath.Join(dir, "bus.shards", "shard-*.olg"))
	if err != nil || len(segs) == 0 {
		log.Fatalf("no shard segments to tear (%v): %v", segs, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 2, 0, 'P', 'a', 'r', 't', 'i', 'a', 'l'}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("worker: tore the bus log mid-append; pulling the plug")
	os.Stdout.Sync()

	// kill -9: no deferred closes, no atexit, nothing.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		log.Fatal(err)
	}
	p.Kill()
	select {} // wait for the signal to land
}

func parseSpec() *orchestra.Spec {
	parsed, err := orchestra.ParseSpecString(cdss)
	if err != nil {
		log.Fatal(err)
	}
	return parsed.Spec
}

// countingBus wraps a PublicationBus and counts publications actually
// fetched — the replay traffic recovery is supposed to minimize.
type countingBus struct {
	bus     orchestra.PublicationBus
	fetched atomic.Int64
}

func (c *countingBus) Append(ctx context.Context, peer string, log orchestra.EditLog) error {
	return c.bus.Append(ctx, peer, log)
}

func (c *countingBus) Fetch(ctx context.Context, from orchestra.Cursor) ([]orchestra.Delta, orchestra.Cursor, error) {
	deltas, next, err := c.bus.Fetch(ctx, from)
	c.fetched.Add(int64(len(deltas)))
	return deltas, next, err
}

func (c *countingBus) Horizon(ctx context.Context) (orchestra.Cursor, error) {
	return c.bus.Horizon(ctx)
}

// digest renders instances (sorted) plus the provenance of two tuples
// into one comparable string.
func digest(sys *orchestra.System) string {
	ctx := context.Background()
	out := ""
	for _, rel := range sys.RelationNames() {
		descs, err := sys.DescribeInstance("", rel)
		if err != nil {
			log.Fatal(err)
		}
		out += fmt.Sprintf("%s: %v\n", rel, descs)
	}
	for _, tup := range []orchestra.Tuple{orchestra.MakeTuple(3, 5), orchestra.MakeTuple(7, 9)} {
		info, err := sys.Provenance(ctx, "", "B", tup)
		if err != nil {
			log.Fatal(err)
		}
		sort.Strings(info.Support)
		out += fmt.Sprintf("Pv(B%s) = %s derivable=%v support=%v\n", tup, info.Expr, info.Derivable, info.Support)
	}
	return out
}
