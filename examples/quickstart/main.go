// Quickstart: the paper's running bioinformatics example (Examples 1–7),
// driven through the public orchestra API.
//
// Three peers — PGUS (Genomics Unified Schema), PBioSQL (BioPerl's
// BioSQL), and PuBio (taxon synonyms) — share taxon data through four
// schema mappings. We publish their edit logs, run update exchange,
// answer certain-answer queries, inspect provenance, and apply a
// curation deletion.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

const cdss = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)
`

func main() {
	ctx := context.Background()
	parsed, err := orchestra.ParseSpecString(cdss)
	if err != nil {
		log.Fatal(err)
	}

	// One system; every peer could get its own view, we use the global one.
	sys, err := orchestra.New(parsed.Spec)
	if err != nil {
		log.Fatal(err)
	}

	// Example 3's edit logs: each peer inserts locally, offline.
	must(sys.Publish(ctx, "PGUS", orchestra.EditLog{
		orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3)),
		orchestra.Ins("G", orchestra.MakeTuple(3, 5, 2)),
	}))
	must(sys.Publish(ctx, "PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(3, 5))}))
	must(sys.Publish(ctx, "PuBio", orchestra.EditLog{orchestra.Ins("U", orchestra.MakeTuple(2, 5))}))

	if _, err := sys.Exchange(ctx, ""); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Instances after update exchange (Example 3) ==")
	for _, rel := range []string{"G", "B", "U"} {
		rows, err := sys.Instance("", rel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:", rel)
		for _, row := range rows {
			fmt.Printf(" %s", describe(sys, row))
		}
		fmt.Println()
	}

	fmt.Println("\n== Certain answers (Example 3) ==")
	for _, q := range []string{
		"ans(x,y) :- U(x,z), U(y,z)",
		"ans(x,y) :- U(x,y)",
	} {
		rows, err := sys.Query(ctx, "", q, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s ->", q)
		for _, row := range rows {
			fmt.Printf(" %s", row)
		}
		fmt.Println()
	}

	fmt.Println("\n== Provenance (Example 6) ==")
	for _, t := range [][]int{{3, 2}, {3, 3}} {
		tup := orchestra.MakeTuple(t[0], t[1])
		info, err := sys.Provenance(ctx, "", "B", tup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Pv(B%s) = %s\n", tup, info.Expr)
	}

	fmt.Println("\n== Curation deletion (end of Example 3) ==")
	must(sys.Publish(ctx, "PBioSQL", orchestra.EditLog{orchestra.Del("B", orchestra.MakeTuple(3, 2))}))
	if _, err := sys.Exchange(ctx, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after PBioSQL rejects B(3,2):")
	bRows, _ := sys.Instance("", "B")
	fmt.Printf("B:")
	for _, row := range bRows {
		fmt.Printf(" %s", row)
	}
	uRows, _ := sys.Instance("", "U")
	fmt.Printf("\nU:")
	for _, row := range uRows {
		fmt.Printf(" %s", describe(sys, row))
	}
	fmt.Println("\n(B lost (3,2) and the derived (3,3); U lost the m3 image of B(3,2).)")
}

func describe(sys *orchestra.System, row orchestra.Tuple) string {
	desc, err := sys.Describe("", row)
	if err != nil {
		log.Fatal(err)
	}
	return desc
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
