// Quickstart: the paper's running bioinformatics example (Examples 1–7).
//
// Three peers — PGUS (Genomics Unified Schema), PBioSQL (BioPerl's
// BioSQL), and PuBio (taxon synonyms) — share taxon data through four
// schema mappings. We publish their edit logs, run update exchange,
// answer certain-answer queries, inspect provenance, and apply a
// curation deletion.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"orchestra/internal/core"
	"orchestra/internal/spec"
	"orchestra/internal/value"
)

const cdss = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)
`

func main() {
	parsed, err := spec.ParseString(cdss)
	if err != nil {
		log.Fatal(err)
	}

	// One CDSS; every peer gets its own view, we use the global one.
	c := core.NewCDSS(parsed.Spec, core.Options{}, core.DeleteProvenance)

	// Example 3's edit logs: each peer inserts locally, offline.
	must(c.Publish("PGUS", core.EditLog{
		core.Ins("G", core.MakeTuple(1, 2, 3)),
		core.Ins("G", core.MakeTuple(3, 5, 2)),
	}))
	must(c.Publish("PBioSQL", core.EditLog{core.Ins("B", core.MakeTuple(3, 5))}))
	must(c.Publish("PuBio", core.EditLog{core.Ins("U", core.MakeTuple(2, 5))}))

	view, err := c.View("")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.Exchange(""); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Instances after update exchange (Example 3) ==")
	for _, rel := range []string{"G", "B", "U"} {
		tbl := view.Instance(rel)
		fmt.Printf("%s:", rel)
		for _, row := range tbl.Rows() {
			fmt.Printf(" %s", describe(view, row))
		}
		fmt.Println()
	}

	fmt.Println("\n== Certain answers (Example 3) ==")
	for _, q := range []string{
		"ans(x,y) :- U(x,z), U(y,z)",
		"ans(x,y) :- U(x,y)",
	} {
		rows, err := view.Query(q, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s ->", q)
		for _, row := range rows {
			fmt.Printf(" %s", row)
		}
		fmt.Println()
	}

	fmt.Println("\n== Provenance (Example 6) ==")
	for _, t := range [][]int{{3, 2}, {3, 3}} {
		tup := core.MakeTuple(t[0], t[1])
		fmt.Printf("Pv(B%s) = %s\n", tup, view.ProvOf("B", tup))
	}

	fmt.Println("\n== Curation deletion (end of Example 3) ==")
	must(c.Publish("PBioSQL", core.EditLog{core.Del("B", core.MakeTuple(3, 2))}))
	if _, err := c.Exchange(""); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after PBioSQL rejects B(3,2):")
	fmt.Printf("B:")
	for _, row := range view.Instance("B").Rows() {
		fmt.Printf(" %s", row)
	}
	fmt.Printf("\nU:")
	for _, row := range view.Instance("U").Rows() {
		fmt.Printf(" %s", describe(view, row))
	}
	fmt.Println("\n(B lost (3,2) and the derived (3,3); U lost the m3 image of B(3,2).)")
}

func describe(v *core.View, row value.Tuple) string {
	parts := make([]string, len(row))
	for i, val := range row {
		parts[i] = v.Skolems().Describe(val)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
