// Evolution: live confederation evolution on the paper's running
// example — the scenario family the static Spec of earlier revisions
// could not express.
//
// A confederation is a long-lived thing: peers join after years of
// operation, mappings are refined or retired, trust is granted and
// revoked. This walkthrough evolves a *running* system through all of
// it — no teardown, no re-exchange from publication zero:
//
//  1. a reference-taxonomy peer PRef joins (AddPeer),
//  2. a mapping onto it is added and existing data flows through at
//     once (AddMapping: a semi-naive round seeded with the new rules),
//  3. PBioSQL starts distrusting m1 derivations with nam >= 3
//     (SetTrust: provenance-driven revocation deletes exactly the
//     derivations every one of whose proofs uses the revoked trust),
//  4. a mapping is removed (RemoveMapping: the paper's deletion
//     propagation generalized from tuple deletions to rule deletions),
//  5. the evolved system is compared against a fresh system built from
//     the final spec over the same publication history — they agree
//     exactly.
//
// Run with: go run ./examples/evolution
package main

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

const cdss = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
`

func main() {
	ctx := context.Background()
	parsed, err := orchestra.ParseSpecString(cdss)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := orchestra.New(parsed.Spec)
	if err != nil {
		log.Fatal(err)
	}

	// The confederation runs for a while: peers publish, everyone
	// exchanges.
	must(sys.Publish(ctx, "PGUS", orchestra.EditLog{
		orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3)),
		orchestra.Ins("G", orchestra.MakeTuple(3, 5, 2)),
	}))
	must(sys.Publish(ctx, "PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(3, 5))}))
	exchangeAll(ctx, sys)
	fmt.Println("== initial confederation ==")
	dump(sys, "B", "U")

	// 1. A reference-taxonomy peer joins the running system.
	must(sys.AddPeer(ctx, "PRef { relation C(nam int, cls int) }"))
	fmt.Println("\n== PRef joined (spec generation", sys.SpecGeneration(), ") ==")

	// 2. Map the synonym table onto it: the seeded round pushes the
	// existing U instance through m4 immediately — nothing re-exchanges.
	must(sys.AddMapping(ctx, "m4: U(n,c) -> C(n,n)"))
	fmt.Println("\n== after AddMapping m4: U(n,c) -> C(n,n) ==")
	dump(sys, "C")

	// The new peer participates like any founding member.
	must(sys.Publish(ctx, "PRef", orchestra.EditLog{orchestra.Ins("C", orchestra.MakeTuple(9, 1))}))
	exchangeAll(ctx, sys)

	// 3. Trust revocation, evaluated over derivations: PBioSQL stops
	// trusting m1 derivations with nam >= 3. The provenance graph tells
	// us exactly which tuples lose their every proof.
	pred, err := orchestra.ParseTrustPred("n >= 3")
	if err != nil {
		log.Fatal(err)
	}
	pol := orchestra.NewTrustPolicy("PBioSQL")
	pol.DistrustMapping("m1", pred)
	must(sys.SetTrust(ctx, "PBioSQL", pol))
	fmt.Println("\n== PBioSQL's view after distrusting m1 when n >= 3 ==")
	descs, err := sys.DescribeInstance("PBioSQL", "B")
	must(err)
	for _, d := range descs {
		fmt.Println("  B", d)
	}

	// 4. Retire mapping m3. Every tuple whose derivations all pass
	// through m3 disappears; tuples with independent derivations stay.
	must(sys.RemoveMapping(ctx, "m3"))
	fmt.Println("\n== after RemoveMapping m3 ==")
	dump(sys, "U")

	// 5. The punchline: the evolved system is indistinguishable from a
	// fresh system built from the final spec over the same publication
	// history.
	fresh, err := orchestra.New(sys.Spec(), orchestra.WithBus(sys.Bus()))
	must(err)
	exchangeAll(ctx, fresh)
	for _, owner := range append(sys.Peers(), "") {
		for _, rel := range sys.RelationNames() {
			a, err := sys.DescribeInstance(owner, rel)
			must(err)
			b, err := fresh.DescribeInstance(owner, rel)
			must(err)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				log.Fatalf("divergence at owner %q rel %s:\n evolved %v\n fresh %v", owner, rel, a, b)
			}
		}
	}
	fmt.Printf("\nevolved system (%d operations) is exactly a fresh build of the final spec: OK\n",
		sys.SpecGeneration())
}

func exchangeAll(ctx context.Context, sys *orchestra.System) {
	if _, err := sys.ExchangeAll(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		log.Fatal(err)
	}
}

func dump(sys *orchestra.System, rels ...string) {
	for _, rel := range rels {
		descs, err := sys.DescribeInstance("", rel)
		must(err)
		fmt.Printf("  %s (%d rows)\n", rel, len(descs))
		for _, d := range descs {
			fmt.Println("   ", d)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
