// Federation: the full CDSS stack across "nodes" (paper §2's operating
// mode with central publication storage), on the public orchestra API.
//
// Starts the publication service (orchestra.BusServer) on a loopback
// port with durable storage, then runs two independent CDSS nodes that
// never talk to each other directly: each publishes its peers' edit
// logs to the service through an HTTP bus, and runs update exchange
// locally. Their instances converge; a simulated restart of node 2
// rebuilds its state from scratch via the service.
//
// Run with: go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"orchestra"
)

const cdss = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)
`

func main() {
	ctx := context.Background()
	parsed, err := orchestra.ParseSpecString(cdss)
	if err != nil {
		log.Fatal(err)
	}

	// --- The publication service (one per confederation). ---
	dir, err := os.MkdirTemp("", "orchestra-fed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	srv := orchestra.NewBusServer()
	srv.ValidateAgainst(parsed.Spec)
	if _, err := srv.PersistTo(filepath.Join(dir, "publications.log")); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv) //nolint: this demo server lives for the process
	url := "http://" + ln.Addr().String()
	fmt.Printf("publication service at %s\n\n", url)

	// --- Node 1 hosts PGUS; node 2 hosts PBioSQL and PuBio. Both run
	// the same code against the shared HTTP bus. ---
	newNode := func() *orchestra.System {
		sys, err := orchestra.New(parsed.Spec, orchestra.WithBus(orchestra.NewHTTPBus(url)))
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}
	node1, node2 := newNode(), newNode()

	publish := func(node *orchestra.System, peer string, log_ orchestra.EditLog) {
		if err := node.Publish(ctx, peer, log_); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s published %d edits\n", peer, len(log_))
	}

	fmt.Println("== Epoch 1: offline edits, publish ==")
	publish(node1, "PGUS", orchestra.EditLog{
		orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3)),
		orchestra.Ins("G", orchestra.MakeTuple(3, 5, 2)),
	})
	publish(node2, "PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(3, 5))})
	publish(node2, "PuBio", orchestra.EditLog{orchestra.Ins("U", orchestra.MakeTuple(2, 5))})

	instanceLen := func(node *orchestra.System, rel string) int {
		rows, err := node.Instance("", rel)
		if err != nil {
			log.Fatal(err)
		}
		return len(rows)
	}
	sync := func(name string, node *orchestra.System) {
		if _, err := node.Exchange(ctx, ""); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: B has %d rows, U has %d rows\n",
			name, instanceLen(node, "B"), instanceLen(node, "U"))
	}

	fmt.Println("\n== Both nodes sync + exchange ==")
	sync("node1", node1)
	sync("node2", node2)
	if instanceLen(node1, "B") != instanceLen(node2, "B") {
		log.Fatal("nodes diverged")
	}
	fmt.Println("  nodes agree ✓")

	fmt.Println("\n== Epoch 2: PBioSQL curates away B(3,2) ==")
	publish(node2, "PBioSQL", orchestra.EditLog{orchestra.Del("B", orchestra.MakeTuple(3, 2))})
	sync("node1", node1)
	sync("node2", node2)
	b1, err := node1.Instance("", "B")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range b1 {
		if row.Equal(orchestra.MakeTuple(3, 2)) {
			log.Fatal("rejection did not propagate")
		}
	}
	fmt.Println("  rejection propagated to both nodes ✓")

	fmt.Println("\n== Node 2 restarts and rebuilds from the service ==")
	node2b := newNode()
	if _, err := node2b.Exchange(ctx, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  rebuilt from %d publications: B has %d rows, U has %d rows\n",
		srv.Len(), instanceLen(node2b, "B"), instanceLen(node2b, "U"))
	if instanceLen(node2b, "B") != instanceLen(node2, "B") {
		log.Fatal("rebuilt node diverged")
	}
	fmt.Printf("  durable store holds %d publications for cold restarts ✓\n", srv.Len())
}
