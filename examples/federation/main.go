// Federation: the full CDSS stack across "nodes" (paper §2's operating
// mode with central publication storage).
//
// Starts the publication service (internal/share) on a loopback port
// with durable storage (internal/logstore), then runs two independent
// CDSS nodes that never talk to each other directly: each publishes its
// peers' edit logs to the service, syncs the others' publications from
// it, and runs update exchange locally. Their instances converge; a
// simulated restart of node 2 rebuilds its state from scratch via the
// service.
//
// Run with: go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"orchestra/internal/core"
	"orchestra/internal/logstore"
	"orchestra/internal/share"
	"orchestra/internal/spec"
)

const cdss = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)
`

func main() {
	parsed, err := spec.ParseString(cdss)
	if err != nil {
		log.Fatal(err)
	}

	// --- The publication service (one per confederation). ---
	dir, err := os.MkdirTemp("", "orchestra-fed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := logstore.Open(filepath.Join(dir, "publications.log"))
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	srv := share.NewServer()
	srv.Validate = share.SpecValidator(parsed.Spec)
	srv.Persist = store.Append
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv) //nolint: this demo server lives for the process
	url := "http://" + ln.Addr().String()
	fmt.Printf("publication service at %s\n\n", url)

	// --- Node 1 hosts PGUS; node 2 hosts PBioSQL and PuBio. ---
	node1 := core.NewCDSS(parsed.Spec, core.Options{}, core.DeleteProvenance)
	node2 := core.NewCDSS(parsed.Spec, core.Options{}, core.DeleteProvenance)
	cl1, cl2 := share.NewClient(url), share.NewClient(url)
	cur1, cur2 := 0, 0

	publish := func(cl *share.Client, peer string, log_ core.EditLog) {
		if err := cl.Publish(peer, log_); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s published %d edits\n", peer, len(log_))
	}

	fmt.Println("== Epoch 1: offline edits, publish ==")
	publish(cl1, "PGUS", core.EditLog{
		core.Ins("G", core.MakeTuple(1, 2, 3)),
		core.Ins("G", core.MakeTuple(3, 5, 2)),
	})
	publish(cl2, "PBioSQL", core.EditLog{core.Ins("B", core.MakeTuple(3, 5))})
	publish(cl2, "PuBio", core.EditLog{core.Ins("U", core.MakeTuple(2, 5))})

	sync := func(name string, cl *share.Client, node *core.CDSS, cur *int) *core.View {
		var err error
		if *cur, err = cl.Sync(node, *cur); err != nil {
			log.Fatal(err)
		}
		v, err := node.View("")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := node.Exchange(""); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: B has %d rows, U has %d rows\n",
			name, v.Instance("B").Len(), v.Instance("U").Len())
		return v
	}

	fmt.Println("\n== Both nodes sync + exchange ==")
	v1 := sync("node1", cl1, node1, &cur1)
	v2 := sync("node2", cl2, node2, &cur2)
	if v1.Instance("B").Len() != v2.Instance("B").Len() {
		log.Fatal("nodes diverged")
	}
	fmt.Println("  nodes agree ✓")

	fmt.Println("\n== Epoch 2: PBioSQL curates away B(3,2) ==")
	publish(cl2, "PBioSQL", core.EditLog{core.Del("B", core.MakeTuple(3, 2))})
	v1 = sync("node1", cl1, node1, &cur1)
	v2 = sync("node2", cl2, node2, &cur2)
	if v1.Instance("B").Contains(core.MakeTuple(3, 2)) {
		log.Fatal("rejection did not propagate")
	}
	fmt.Println("  rejection propagated to both nodes ✓")

	fmt.Println("\n== Node 2 restarts and rebuilds from the service ==")
	node2b := core.NewCDSS(parsed.Spec, core.Options{}, core.DeleteProvenance)
	cur := 0
	cl := share.NewClient(url)
	if cur, err = cl.Sync(node2b, cur); err != nil {
		log.Fatal(err)
	}
	vb, _ := node2b.View("")
	if _, err := node2b.Exchange(""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  rebuilt from %d publications: B has %d rows, U has %d rows\n",
		cur, vb.Instance("B").Len(), vb.Instance("U").Len())
	if vb.Instance("B").Len() != v2.Instance("B").Len() {
		log.Fatal("rebuilt node diverged")
	}
	fmt.Printf("  durable store holds %d publications for cold restarts ✓\n", store.Len())
}
