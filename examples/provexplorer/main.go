// Provexplorer: the semiring-provenance model in action (paper §3.2–3.3
// and the underlying "Provenance Semirings" framework), on the public
// orchestra API.
//
// Builds Example 6's configuration, then evaluates every derived tuple's
// provenance in several semirings:
//
//   - boolean (trust verdicts under Example 7's token assignments),
//   - counting (number of derivations),
//   - tropical (cost of the cheapest derivation, charging 1 per mapping),
//   - lineage (which base tuples it depends on),
//
// and prints the provenance graph in Graphviz DOT form (Example 5).
//
// Run with: go run ./examples/provexplorer
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"orchestra"
)

const cdss = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)

edit PBioSQL + B(3,5)
edit PuBio   + U(2,5)
edit PGUS    + G(3,5,2)
`

func main() {
	ctx := context.Background()
	parsed, err := orchestra.ParseSpecString(cdss)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := orchestra.New(parsed.Spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.PublishFileEdits(ctx, parsed); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		log.Fatal(err)
	}
	g, err := sys.ProvenanceGraph("")
	if err != nil {
		log.Fatal(err)
	}

	// Example 6's token names.
	p1 := orchestra.LocalRef("B", orchestra.MakeTuple(3, 5))
	p2 := orchestra.LocalRef("U", orchestra.MakeTuple(2, 5))
	p3 := orchestra.LocalRef("G", orchestra.MakeTuple(3, 5, 2))
	names := map[orchestra.ProvRef]string{p1: "p1", p2: "p2", p3: "p3"}
	g.SetTokenNamer(func(r orchestra.ProvRef) string {
		if n, ok := names[r]; ok {
			return n
		}
		return r.String()
	})

	b32 := orchestra.InstanceRef("B", orchestra.MakeTuple(3, 2))
	fmt.Println("== Provenance expression (Example 6) ==")
	fmt.Printf("Pv(B(3,2)) = %s\n", g.ExprFor(b32, 0))

	fmt.Println("\n== Trust in the boolean semiring (Example 7) ==")
	scenarios := []struct {
		desc     string
		tokens   map[orchestra.ProvRef]bool
		mappings map[string]bool
	}{
		{"p1=T p2=D p3=T, all Θ=T", map[orchestra.ProvRef]bool{p2: false}, nil},
		{"distrust p2 and mapping m1", map[orchestra.ProvRef]bool{p2: false}, map[string]bool{"m1": false}},
		{"distrust p1 and p2", map[orchestra.ProvRef]bool{p1: false, p2: false}, nil},
	}
	for _, sc := range scenarios {
		vals, err := orchestra.EvalProvenance[bool](ctx, g, orchestra.BoolSemiring{},
			func(m string, x bool) bool {
				if v, ok := sc.mappings[m]; ok {
					return v && x
				}
				return x
			},
			func(r orchestra.ProvRef) bool {
				if v, ok := sc.tokens[r]; ok {
					return v
				}
				return true
			})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ACCEPT"
		if !vals[b32] {
			verdict = "REJECT"
		}
		fmt.Printf("%-32s -> B(3,2): %s\n", sc.desc, verdict)
	}

	fmt.Println("\n== Derivation counts (counting semiring) ==")
	counts, err := orchestra.EvalProvenance[int64](ctx, g, orchestra.CountSemiring{},
		orchestra.IdentityMap[int64](),
		func(orchestra.ProvRef) int64 { return 1 })
	if err != nil {
		log.Fatal(err)
	}
	printSorted(counts, func(v int64) string { return fmt.Sprintf("%d derivation(s)", v) })

	fmt.Println("\n== Cheapest derivation cost (tropical semiring, 1 per mapping hop) ==")
	costs, err := orchestra.EvalProvenance[int64](ctx, g, orchestra.TropicalSemiring{},
		func(_ string, x int64) int64 { return orchestra.TropicalSemiring{}.Mul(x, 1) },
		func(orchestra.ProvRef) int64 { return 0 })
	if err != nil {
		log.Fatal(err)
	}
	printSorted(costs, func(v int64) string {
		if v >= orchestra.TropicalInf {
			return "unreachable"
		}
		return fmt.Sprintf("cost %d", v)
	})

	fmt.Println("\n== Lineage (which base tuples does it depend on?) ==")
	lin, err := orchestra.EvalProvenance[orchestra.LineageElem](ctx, g, orchestra.LineageSemiring{},
		orchestra.IdentityMap[orchestra.LineageElem](),
		func(r orchestra.ProvRef) orchestra.LineageElem { return orchestra.LineageToken(g.TokenName(r)) })
	if err != nil {
		log.Fatal(err)
	}
	printSorted(lin, func(v orchestra.LineageElem) string { return fmt.Sprintf("%v", []string(v.Set)) })

	fmt.Println("\n== Provenance graph (Graphviz DOT, cf. Example 5) ==")
	fmt.Print(g.Dot(nil))
}

// printSorted prints curated-instance tuples (Rᵒ nodes) with their values.
func printSorted[T any](vals map[orchestra.ProvRef]T, show func(T) string) {
	var keys []orchestra.ProvRef
	for r := range vals {
		if orchestra.IsInstanceRef(r) {
			keys = append(keys, r)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Rel != keys[j].Rel {
			return keys[i].Rel < keys[j].Rel
		}
		return keys[i].Key < keys[j].Key
	})
	for _, r := range keys {
		fmt.Printf("  %-24s %s\n", r, show(vals[r]))
	}
}
