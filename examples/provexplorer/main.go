// Provexplorer: the semiring-provenance model in action (paper §3.2–3.3
// and the underlying "Provenance Semirings" framework).
//
// Builds Example 6's configuration, then evaluates every derived tuple's
// provenance in several semirings:
//
//   - boolean (trust verdicts under Example 7's token assignments),
//   - counting (number of derivations),
//   - tropical (cost of the cheapest derivation, charging 1 per mapping),
//   - lineage (which base tuples it depends on),
//
// and prints the provenance graph in Graphviz DOT form (Example 5).
//
// Run with: go run ./examples/provexplorer
package main

import (
	"fmt"
	"log"
	"sort"

	"orchestra/internal/core"
	"orchestra/internal/provenance"
	"orchestra/internal/semiring"
	"orchestra/internal/spec"
)

const cdss = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)

edit PBioSQL + B(3,5)
edit PuBio   + U(2,5)
edit PGUS    + G(3,5,2)
`

func main() {
	parsed, err := spec.ParseString(cdss)
	if err != nil {
		log.Fatal(err)
	}
	view, err := core.NewView(parsed.Spec, "", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for peer, lg := range parsed.EditLogs() {
		if _, err := view.ApplyEdits(lg, core.DeleteProvenance); err != nil {
			log.Fatalf("%s: %v", peer, err)
		}
	}
	g := view.Graph()

	// Example 6's token names.
	p1 := provenance.NewRef(core.LocalRel("B"), core.MakeTuple(3, 5))
	p2 := provenance.NewRef(core.LocalRel("U"), core.MakeTuple(2, 5))
	p3 := provenance.NewRef(core.LocalRel("G"), core.MakeTuple(3, 5, 2))
	names := map[provenance.Ref]string{p1: "p1", p2: "p2", p3: "p3"}
	g.SetTokenNamer(func(r provenance.Ref) string {
		if n, ok := names[r]; ok {
			return n
		}
		return r.String()
	})

	b32 := provenance.NewRef(core.OutputRel("B"), core.MakeTuple(3, 2))
	fmt.Println("== Provenance expression (Example 6) ==")
	fmt.Printf("Pv(B(3,2)) = %s\n", g.ExprFor(b32, 0))

	fmt.Println("\n== Trust in the boolean semiring (Example 7) ==")
	scenarios := []struct {
		desc     string
		tokens   map[provenance.Ref]bool
		mappings map[string]bool
	}{
		{"p1=T p2=D p3=T, all Θ=T", map[provenance.Ref]bool{p2: false}, nil},
		{"distrust p2 and mapping m1", map[provenance.Ref]bool{p2: false}, map[string]bool{"m1": false}},
		{"distrust p1 and p2", map[provenance.Ref]bool{p1: false, p2: false}, nil},
	}
	for _, sc := range scenarios {
		vals, err := provenance.Eval[bool](g, semiring.Bool{},
			func(m string, x bool) bool {
				if v, ok := sc.mappings[m]; ok {
					return v && x
				}
				return x
			},
			func(r provenance.Ref) bool {
				if v, ok := sc.tokens[r]; ok {
					return v
				}
				return true
			}, provenance.EvalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ACCEPT"
		if !vals[b32] {
			verdict = "REJECT"
		}
		fmt.Printf("%-32s -> B(3,2): %s\n", sc.desc, verdict)
	}

	fmt.Println("\n== Derivation counts (counting semiring) ==")
	counts, err := provenance.Eval[int64](g, semiring.Count{}, semiring.Identity[int64](),
		func(provenance.Ref) int64 { return 1 }, provenance.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	printSorted(counts, func(v int64) string { return fmt.Sprintf("%d derivation(s)", v) })

	fmt.Println("\n== Cheapest derivation cost (tropical semiring, 1 per mapping hop) ==")
	costs, err := provenance.Eval[int64](g, semiring.Tropical{},
		func(_ string, x int64) int64 { return semiring.Tropical{}.Mul(x, 1) },
		func(provenance.Ref) int64 { return 0 }, provenance.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	printSorted(costs, func(v int64) string {
		if v >= semiring.TropInf {
			return "unreachable"
		}
		return fmt.Sprintf("cost %d", v)
	})

	fmt.Println("\n== Lineage (which base tuples does it depend on?) ==")
	lin, err := provenance.Eval[semiring.LineageElem](g, semiring.Lineage{},
		semiring.Identity[semiring.LineageElem](),
		func(r provenance.Ref) semiring.LineageElem { return semiring.Token(g.TokenName(r)) },
		provenance.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	printSorted(lin, func(v semiring.LineageElem) string { return fmt.Sprintf("%v", []string(v.Set)) })

	fmt.Println("\n== Provenance graph (Graphviz DOT, cf. Example 5) ==")
	fmt.Print(g.Dot(nil))
}

// printSorted prints derived-output tuples (Rᵒ tables) with their values.
func printSorted[T any](vals map[provenance.Ref]T, show func(T) string) {
	var keys []provenance.Ref
	for r := range vals {
		if len(r.Rel) > 2 && r.Rel[len(r.Rel)-2:] == "$o" {
			keys = append(keys, r)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Rel != keys[j].Rel {
			return keys[i].Rel < keys[j].Rel
		}
		return keys[i].Key < keys[j].Key
	})
	for _, r := range keys {
		fmt.Printf("  %-24s %s\n", r, show(vals[r]))
	}
}
