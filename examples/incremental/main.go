// Incremental: maintenance-strategy shootout (paper §4.2 and §6.3),
// driven through the public orchestra API.
//
// Loads a 5-peer, full-mappings CDSS (Figure 4's setting), then deletes a
// growing share of the base data under each deletion strategy —
// provenance-driven incremental (Fig. 3), DRed, and full recomputation —
// verifying that all three converge to identical instances and reporting
// their costs side by side.
//
// Run with: go run ./examples/incremental
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"orchestra"
)

const baseEntries = 60

func buildLoaded(strategy orchestra.DeletionStrategy) (*orchestra.Workload, *orchestra.System) {
	ctx := context.Background()
	w, err := orchestra.NewWorkload(orchestra.WorkloadConfig{
		Peers:    5,
		Topology: orchestra.TopologyComplete,
		AttrMode: orchestra.AttrsShared, // full tgds: the paper's "full mappings"
		Dataset:  orchestra.DatasetInteger,
		Seed:     42,
	})
	if err != nil {
		log.Fatalf("%s: %v", strategy, err)
	}
	sys, err := orchestra.New(w.Spec,
		orchestra.WithBackend(orchestra.BackendIndexed),
		orchestra.WithDeletionStrategy(strategy),
	)
	if err != nil {
		log.Fatalf("%s: %v", strategy, err)
	}
	for _, peer := range w.PeerNames() {
		if err := sys.Publish(ctx, peer, w.GenInsertions(peer, baseEntries)); err != nil {
			log.Fatalf("%s: %v", strategy, err)
		}
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		log.Fatalf("%s: %v", strategy, err)
	}
	return w, sys
}

func main() {
	ctx := context.Background()
	strategies := []orchestra.DeletionStrategy{
		orchestra.DeleteProvenance, orchestra.DeleteDRed, orchestra.DeleteRecompute,
	}

	fmt.Printf("%-6s", "del%")
	for _, s := range strategies {
		fmt.Printf("  %-12s", s)
	}
	fmt.Println("  identical?")

	for _, pct := range []int{10, 30, 50, 70} {
		fmt.Printf("%-6d", pct)
		var sizes []int
		var stats []orchestra.ApplyStats
		for _, strategy := range strategies {
			w, sys := buildLoaded(strategy)
			n := baseEntries * pct / 100
			for _, peer := range w.PeerNames() {
				if err := sys.Publish(ctx, peer, w.GenDeletions(peer, n)); err != nil {
					log.Fatal(err)
				}
			}
			start := time.Now()
			st, err := sys.Exchange(ctx, "")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s", time.Since(start).Round(time.Millisecond))
			total, err := sys.TotalRows("")
			if err != nil {
				log.Fatal(err)
			}
			sizes = append(sizes, total)
			stats = append(stats, st)
		}
		same := sizes[0] == sizes[1] && sizes[1] == sizes[2]
		fmt.Printf("  %v (%d rows)\n", same, sizes[0])
		if !same {
			log.Fatalf("strategies diverged: %v", sizes)
		}
		fmt.Printf("      incremental work: %d prov rows deleted, %d tuples deleted, %d derivability checks (%d survived)\n",
			stats[0].ProvRowsDeleted, stats[0].TuplesDeleted, stats[0].Checked, stats[0].Rederived)
	}
	fmt.Println("\nAll strategies converge to the same consistent state (Def. 3.1);")
	fmt.Println("the provenance-driven algorithm does goal-directed work proportional")
	fmt.Println("to the deleted share, while DRed over-deletes and re-derives.")
}
