// Incremental: maintenance-strategy shootout (paper §4.2 and §6.3).
//
// Loads a 5-peer, full-mappings CDSS (Figure 4's setting), then deletes a
// growing share of the base data under each deletion strategy —
// provenance-driven incremental (Fig. 3), DRed, and full recomputation —
// verifying that all three converge to identical instances and reporting
// their costs side by side.
//
// Run with: go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/engine"
	"orchestra/internal/workload"
)

const baseEntries = 60

func buildLoaded(strategyName string) (*workload.Workload, *core.View) {
	w, err := workload.New(workload.Config{
		Peers:    5,
		Topology: workload.TopologyComplete,
		AttrMode: workload.AttrsShared, // full tgds: the paper's "full mappings"
		Dataset:  workload.DatasetInteger,
		Seed:     42,
	})
	if err != nil {
		log.Fatalf("%s: %v", strategyName, err)
	}
	v, err := core.NewView(w.Spec, "", core.Options{Backend: engine.BackendIndexed})
	if err != nil {
		log.Fatalf("%s: %v", strategyName, err)
	}
	for _, peer := range w.PeerNames() {
		if _, err := v.ApplyEdits(w.GenInsertions(peer, baseEntries), core.DeleteProvenance); err != nil {
			log.Fatalf("%s: %v", strategyName, err)
		}
	}
	return w, v
}

func main() {
	strategies := []core.DeletionStrategy{
		core.DeleteProvenance, core.DeleteDRed, core.DeleteRecompute,
	}

	fmt.Printf("%-6s", "del%")
	for _, s := range strategies {
		fmt.Printf("  %-12s", s)
	}
	fmt.Println("  identical?")

	for _, pct := range []int{10, 30, 50, 70} {
		fmt.Printf("%-6d", pct)
		var sizes []int
		var stats []core.ApplyStats
		for _, strategy := range strategies {
			w, v := buildLoaded(strategy.String())
			n := baseEntries * pct / 100
			var logs []core.EditLog
			for _, peer := range w.PeerNames() {
				logs = append(logs, w.GenDeletions(peer, n))
			}
			start := time.Now()
			var st core.ApplyStats
			for _, lg := range logs {
				s, err := v.ApplyEdits(lg, strategy)
				st.Add(s)
				if err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("  %-12s", time.Since(start).Round(time.Millisecond))
			sizes = append(sizes, v.DB().TotalRows())
			stats = append(stats, st)
		}
		same := sizes[0] == sizes[1] && sizes[1] == sizes[2]
		fmt.Printf("  %v (%d rows)\n", same, sizes[0])
		if !same {
			log.Fatalf("strategies diverged: %v", sizes)
		}
		fmt.Printf("      incremental work: %d prov rows deleted, %d tuples deleted, %d derivability checks (%d survived)\n",
			stats[0].ProvRowsDeleted, stats[0].TuplesDeleted, stats[0].Checked, stats[0].Rederived)
	}
	fmt.Println("\nAll strategies converge to the same consistent state (Def. 3.1);")
	fmt.Println("the provenance-driven algorithm does goal-directed work proportional")
	fmt.Println("to the deleted share, while DRed over-deletes and re-derives.")
}
