package orchestra

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// planQueries generates a deterministic query mix over a workload's
// schema: full scans, point probes with constants sampled from the live
// instances, shared-attribute joins (spelled big-first so only a
// cost-based plan reorders them), and where-filtered variants. Variable
// names are seeded per query so α-renaming gets exercised too.
func planQueries(t *testing.T, sys *System, owner string, w *Workload, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed * 131))
	rels := w.Spec.Universe.Relations()
	varName := func(q, i int) string { return fmt.Sprintf("v%d_%d", q%3, i) }
	var queries []string
	qi := 0
	for _, r := range rels {
		rows, err := sys.Instance(owner, r.Name)
		if err != nil {
			t.Fatal(err)
		}
		n := len(r.Cols)
		vars := make([]string, n)
		for i := range vars {
			vars[i] = varName(qi, i)
		}
		// Full scan.
		queries = append(queries, fmt.Sprintf("q%d(%s) :- %s(%s)",
			qi, strings.Join(vars, ","), r.Name, strings.Join(vars, ",")))
		qi++
		if len(rows) > 0 {
			// Point probe on the key column; constant from a live row so the
			// answer is non-empty, plus a where filter sometimes.
			row := rows[rng.Intn(len(rows))]
			if !row[0].IsNull() {
				args := append([]string{fmt.Sprintf("%d", row[0].AsInt())}, vars[1:]...)
				q := fmt.Sprintf("q%d(%s) :- %s(%s)", qi, strings.Join(vars[1:], ","), r.Name, strings.Join(args, ","))
				if rng.Intn(2) == 0 && n > 1 {
					q += fmt.Sprintf(" where %s >= 0", vars[1])
				}
				queries = append(queries, q)
				qi++
			}
		}
	}
	// Joins over shared non-key attributes, larger relation first.
	for i := 0; i+1 < len(rels); i++ {
		a, b := rels[i], rels[i+1]
		shared, pa, pb := "", -1, -1
		for ai := 1; ai < len(a.Cols) && shared == ""; ai++ {
			for bi := 1; bi < len(b.Cols); bi++ {
				if a.Cols[ai].Name == b.Cols[bi].Name {
					shared, pa, pb = a.Cols[ai].Name, ai, bi
					break
				}
			}
		}
		if shared == "" {
			continue
		}
		arg := func(prefix string, n, at int) string {
			parts := make([]string, n)
			for k := range parts {
				if k == at {
					parts[k] = "s"
				} else {
					parts[k] = fmt.Sprintf("%s%d_%d", prefix, qi, k)
				}
			}
			return strings.Join(parts, ",")
		}
		queries = append(queries, fmt.Sprintf("q%d(s) :- %s(%s), %s(%s)",
			qi, a.Name, arg("a", len(a.Cols), pa), b.Name, arg("b", len(b.Cols), pb)))
		qi++
	}
	return queries
}

// describeAll renders a result set order-independently.
func describeAll(t *testing.T, sys *System, owner string, rows []Tuple) []string {
	t.Helper()
	out := make([]string, len(rows))
	for i, r := range rows {
		d, err := sys.Describe(owner, r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	sort.Strings(out)
	return out
}

// TestPlanEquivalence is the read-path plan equivalence property: for
// random workloads, every query answered by the optimized read path —
// cost-based join ordering, declared secondary indexes, and the result
// cache (each query runs twice, so the second answer is served from
// cache) — is identical to the legacy fixed-order uncached planner's
// answer, on both backends, before and after interleaved writes. Raise
// ORCHESTRA_PLAN_SEEDS for a deeper sweep (the nightly CI job does).
func TestPlanEquivalence(t *testing.T) {
	seeds := 3
	if s := os.Getenv("ORCHESTRA_PLAN_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad ORCHESTRA_PLAN_SEEDS %q", s)
		}
		seeds = n
	}
	for _, be := range []Backend{BackendIndexed, BackendHash} {
		name := "indexed"
		if be == BackendHash {
			name = "hash"
		}
		t.Run(name, func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					runPlanEquivalence(t, be, int64(seed))
				})
			}
		})
	}
}

func runPlanEquivalence(t *testing.T, be Backend, seed int64) {
	ctx := context.Background()
	w, err := NewWorkload(WorkloadConfig{
		Peers:    4,
		Topology: TopologyComplete,
		AttrMode: AttrsShared,
		Dataset:  DatasetInteger,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	refOpts := []Option{WithBackend(be), WithLegacyQueryPlanner(), WithQueryCache(0)}
	optOpts := []Option{WithBackend(be)}
	for _, r := range w.Spec.Universe.Relations() {
		optOpts = append(optOpts, WithSecondaryIndex("", r.Name, r.Cols[0].Name))
	}
	ref, err := New(w.Spec, refOpts...)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New(w.Spec, optOpts...)
	if err != nil {
		t.Fatal(err)
	}

	apply := func(pubs []Publication) {
		for _, sys := range []*System{ref, opt} {
			publishAll(t, sys, pubs)
			if _, err := sys.Exchange(ctx, ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	seedPubs := func(n int) []Publication {
		var pubs []Publication
		for _, peer := range w.PeerNames() {
			pubs = append(pubs, Publication{Peer: peer, Log: w.GenInsertions(peer, n)})
		}
		return pubs
	}

	apply(seedPubs(8))
	for round := 0; round < 3; round++ {
		queries := planQueries(t, ref, "", w, seed+int64(round))
		if len(queries) < 4 {
			t.Fatalf("workload generated only %d queries", len(queries))
		}
		for _, q := range queries {
			for _, nulls := range []bool{false, true} {
				want, err := ref.Query(ctx, "", q, nulls)
				if err != nil {
					t.Fatalf("ref %q: %v", q, err)
				}
				// Twice on the optimized system: the second answer comes from
				// the result cache and must not differ.
				for pass := 0; pass < 2; pass++ {
					got, err := opt.Query(ctx, "", q, nulls)
					if err != nil {
						t.Fatalf("opt %q (pass %d): %v", q, pass, err)
					}
					wd, gd := describeAll(t, ref, "", want), describeAll(t, opt, "", got)
					if len(wd) != len(gd) {
						t.Fatalf("%q nulls=%v pass %d: %d rows, want %d", q, nulls, pass, len(gd), len(wd))
					}
					for i := range wd {
						if wd[i] != gd[i] {
							t.Fatalf("%q nulls=%v pass %d: row %d differs:\n  opt %s\n  ref %s", q, nulls, pass, i, gd[i], wd[i])
						}
					}
				}
			}
		}
		// Interleave writes (with some deletions) and re-derive: cached
		// entries over touched relations must be invalidated, not served.
		var pubs []Publication
		for _, peer := range w.PeerNames() {
			log := w.GenInsertions(peer, 2)
			log = append(log, w.GenDeletions(peer, 1)...)
			pubs = append(pubs, Publication{Peer: peer, Log: log})
		}
		apply(pubs)
	}
	hits, _, _, err := opt.QueryCacheStats("")
	if err != nil {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Fatal("optimized system never served from cache — the property did not exercise the cache path")
	}
}

// TestQueryCacheConcurrentServing is the -race smoke for the serving
// path: concurrent readers over the facade (which serializes per-view
// operations) interleaved with a writer publishing and exchanging.
// Every answer must reflect a consistent view state; the writer's
// inserts must become visible, never torn.
func TestQueryCacheConcurrentServing(t *testing.T) {
	ctx := context.Background()
	w, err := NewWorkload(WorkloadConfig{
		Peers:    3,
		Topology: TopologyChain,
		AttrMode: AttrsShared,
		Dataset:  DatasetInteger,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(w.Spec)
	if err != nil {
		t.Fatal(err)
	}
	publishAll(t, sys, []Publication{{Peer: w.PeerNames()[0], Log: w.GenInsertions(w.PeerNames()[0], 4)}})
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	rel := w.Spec.Universe.Relations()[0]
	vars := make([]string, len(rel.Cols))
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i)
	}
	q := fmt.Sprintf("ans(%s) :- %s(%s)", strings.Join(vars, ","), rel.Name, strings.Join(vars, ","))

	const readers, iters = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for i := 0; i < iters; i++ {
				rows, err := sys.Query(ctx, "", q, true)
				if err != nil {
					errs <- err
					return
				}
				// The writer only inserts, so a correctly invalidated cache
				// can never shrink the answer.
				if len(rows) < last {
					errs <- fmt.Errorf("answer shrank from %d to %d rows", last, len(rows))
					return
				}
				last = len(rows)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		peer := w.PeerNames()[0]
		for i := 0; i < iters; i++ {
			if err := sys.Publish(ctx, peer, w.GenInsertions(peer, 1)); err != nil {
				errs <- err
				return
			}
			if _, err := sys.Exchange(ctx, ""); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses, _, err := sys.QueryCacheStats("")
	if err != nil {
		t.Fatal(err)
	}
	if hits+misses == 0 {
		t.Fatal("no query traffic recorded")
	}
}
