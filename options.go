package orchestra

import (
	"orchestra/internal/core"
	"orchestra/internal/trust"
)

// config collects the functional options of New.
type config struct {
	opts     core.Options
	strategy core.DeletionStrategy
	bus      core.PublicationBus
	policies map[string]*trust.Policy
}

// Option configures a System at construction time.
type Option func(*config)

// WithBackend selects the physical evaluation engine (BackendIndexed or
// BackendHash). The default is BackendIndexed.
func WithBackend(b Backend) Option {
	return func(c *config) { c.opts.Backend = b }
}

// WithDeletionStrategy selects how deletions propagate during exchange
// (DeleteProvenance, DeleteDRed, or DeleteRecompute). The default is the
// paper's provenance-driven incremental algorithm.
func WithDeletionStrategy(s DeletionStrategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithMaxIterations bounds every fixpoint loop as a safety net against
// non-terminating mapping sets (0 = engine default).
func WithMaxIterations(n int) Option {
	return func(c *config) { c.opts.MaxIterations = n }
}

// WithSplitProvTables reverts §5's composite-mapping-table optimization:
// one provenance table per RHS atom instead of one per mapping.
func WithSplitProvTables(on bool) Option {
	return func(c *config) { c.opts.SplitProvTables = on }
}

// WithBus selects the publication bus the system exchanges through: an
// in-memory bus (the default, private to this System), or an HTTP bus
// shared with other nodes of the confederation (see NewHTTPBus).
func WithBus(bus PublicationBus) Option {
	return func(c *config) { c.bus = bus }
}

// WithTrustFor installs (or overrides) a peer's trust policy. The Spec
// passed to New is not mutated: New builds the System over a copy with
// the merged policy map, so one parsed Spec can safely back several
// Systems with different trust configurations.
func WithTrustFor(peer string, pol *TrustPolicy) Option {
	return func(c *config) {
		if c.policies == nil {
			c.policies = make(map[string]*trust.Policy)
		}
		c.policies[peer] = pol
	}
}
