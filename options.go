package orchestra

import (
	"time"

	"orchestra/internal/core"
	"orchestra/internal/trust"
)

// config collects the functional options of New.
type config struct {
	opts     core.Options
	strategy core.DeletionStrategy
	bus      core.PublicationBus
	policies map[string]*trust.Policy
	persist  *persistConfig
	// exchPar bounds ExchangeAll's per-view worker pool (0 = GOMAXPROCS).
	exchPar int
	// serialExchange reverts exchange passes to the reference
	// one-apply-per-publication replay (WithExchangeCoalescing(false)).
	serialExchange bool
	// obs attaches an operations plane (WithObservability).
	obs *Observability
	// slowQuery overrides the slow-query threshold (WithSlowQueryThreshold);
	// 0 keeps the default, < 0 disables slow-query capture.
	slowQuery time.Duration
	// secIdx collects WithSecondaryIndex declarations, validated in New.
	secIdx []secIndexSpec
}

// secIndexSpec is one WithSecondaryIndex declaration.
type secIndexSpec struct {
	owner, relation, column string
}

// persistConfig collects WithPersistence's sub-options.
type persistConfig struct {
	dir string
	// everyN selects the checkpoint policy: 0 checkpoints after every
	// exchange that applied publications (the default), n > 0 once at
	// least n publications accumulated since the view's last checkpoint,
	// and checkpointManual only on explicit System.Checkpoint calls.
	everyN int
}

const checkpointManual = -1

// Option configures a System at construction time.
type Option func(*config)

// WithBackend selects the physical evaluation engine (BackendIndexed or
// BackendHash). The default is BackendIndexed.
func WithBackend(b Backend) Option {
	return func(c *config) { c.opts.Backend = b }
}

// WithDeletionStrategy selects how deletions propagate during exchange
// (DeleteProvenance, DeleteDRed, or DeleteRecompute). The default is the
// paper's provenance-driven incremental algorithm.
func WithDeletionStrategy(s DeletionStrategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithMaxIterations bounds every fixpoint loop as a safety net against
// non-terminating mapping sets (0 = engine default).
func WithMaxIterations(n int) Option {
	return func(c *config) { c.opts.MaxIterations = n }
}

// WithParallelism bounds the worker pool that evaluates the rules of one
// semi-naive round concurrently. The default (0) uses GOMAXPROCS;
// WithParallelism(1) forces fully sequential evaluation. Every setting
// produces identical instances, provenance, and fixpoints — rounds fire
// against immutable tables and derived batches merge in deterministic
// rule order — so this is purely a throughput knob.
func WithParallelism(n int) Option {
	return func(c *config) { c.opts.Parallelism = n }
}

// WithExchangeParallelism bounds the worker pool ExchangeAll uses to run
// the per-view exchange passes concurrently. Peer views are
// data-independent consumers of the shared publication bus — each owns
// its database, labeled-null interner, and cursor — so their maintenance
// runs in parallel; the default (0) uses GOMAXPROCS, and
// WithExchangeParallelism(1) restores the serial walk in peer
// registration order. Every setting produces byte-identical views (the
// scheduler determinism property test pins this down), so like
// WithParallelism this is purely a throughput knob.
func WithExchangeParallelism(n int) Option {
	return func(c *config) { c.exchPar = n }
}

// WithExchangeCoalescing toggles publication coalescing during exchange
// (default on): a view's pending run of publications is merged into one
// net maintenance operation — insert+delete pairs cancel before any
// propagation runs, and one deletion cascade plus one insertion
// fixpoint replace N sequential ones. WithExchangeCoalescing(false)
// restores the original one-apply-per-publication replay; the two are
// observationally equivalent (instances, rejections, provenance
// derivations, labeled-null bijection — the exchange equivalence
// property test compares them), so coalescing too is purely a
// throughput knob. A coalesced pass advances the cursor all-or-nothing,
// while the per-publication replay advances past each fully applied
// publication.
func WithExchangeCoalescing(on bool) Option {
	return func(c *config) { c.serialExchange = !on }
}

// WithSplitProvTables reverts §5's composite-mapping-table optimization:
// one provenance table per RHS atom instead of one per mapping.
func WithSplitProvTables(on bool) Option {
	return func(c *config) { c.opts.SplitProvTables = on }
}

// WithBus selects the publication bus the system exchanges through: an
// in-memory bus (the default, private to this System), an HTTP bus
// shared with other nodes of the confederation (see NewHTTPBus), a
// durable ShardedFileBus, or any composition of the capability
// interfaces — BusAppender+BusReader is the required minimum
// (AdaptBus lifts legacy append/fetch-since implementations to it).
// Push streaming is capability-detected: StartPush works iff the bus
// also implements BusWatcher; a pull-only bus simply polls on
// Exchange.
func WithBus(bus PublicationBus) Option {
	return func(c *config) { c.bus = bus }
}

// WithPersistence makes the System durable: dir becomes its state
// directory, holding one checksummed snapshot per view plus a manifest
// of bus cursors (internal/statestore), and — when no WithBus is given
// — a durable publication log ("bus.olg") replacing the default
// in-memory bus. New recovers every persisted view from its snapshot;
// the next Exchange then replays only the publications past the view's
// persisted cursor. Checkpoints are taken per the configured policy
// (default: after every exchange that applied publications) and via
// System.Checkpoint.
//
// With an explicit WithBus, only view state lives in dir: the bus is
// then responsible for its own durability (cmd/orchestrad -store), and
// it must retain at least every publication past the persisted
// cursors — New and Exchange fail if the bus is behind a persisted
// cursor.
func WithPersistence(dir string, popts ...PersistOption) Option {
	return func(c *config) {
		pc := &persistConfig{dir: dir}
		for _, o := range popts {
			o(pc)
		}
		c.persist = pc
	}
}

// PersistOption refines WithPersistence.
type PersistOption func(*persistConfig)

// CheckpointEvery checkpoints a view once at least n publications have
// been applied to it since its last checkpoint (amortizing snapshot
// writes across exchanges). n < 1 is treated as 1, which equals the
// default checkpoint-every-exchange policy.
func CheckpointEvery(n int) PersistOption {
	return func(pc *persistConfig) {
		if n < 1 {
			n = 1
		}
		pc.everyN = n
	}
}

// CheckpointManual disables automatic checkpoints: state is persisted
// only on explicit System.Checkpoint calls.
func CheckpointManual() PersistOption {
	return func(pc *persistConfig) { pc.everyN = checkpointManual }
}

// WithObservability attaches an operations plane to the System: every
// exchange pass is timed into o's registry (pass duration, publications
// consumed, coalescing cancellation, deletion-cascade and engine work,
// per-view cursors and bus lag, checkpoint age and durable-append
// telemetry) and traced into o's ring buffer as a span tree
// (System.Observability().Tracer().Last). Emission on hot paths is
// atomics only, so the overhead is a few percent at worst; without this
// option the instrumentation sites compile to nil-safe no-ops. Use one
// Observability per System (see NewObservability); a BusServer sharing
// the node can register into the same bundle via EnableMetrics.
func WithObservability(o *Observability) Option {
	return func(c *config) { c.obs = o }
}

// WithSlowQueryThreshold sets the latency above which a query is
// captured into the slow-query ring (System.SlowQueries, orchestrad's
// /debug/slowqueries): the full phase breakdown (parse, cache probe,
// plan, eval), the dependency generation pins the answer was computed
// against, and — because the evaluator is still alive when the
// threshold trips — the chosen physical plan. The default is 250ms;
// d <= 0 disables slow-query capture (the per-query histograms keep
// recording). The option is inert without WithObservability.
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(c *config) {
		if d <= 0 {
			d = -1
		}
		c.slowQuery = d
	}
}

// WithSecondaryIndex declares a persistent secondary index on one
// column (by name) of a relation's curated instance in the owner's view
// ("" declares on the global view). The index is built when the view
// materializes — including recovery from a persisted snapshot — and the
// storage layer maintains it incrementally through every maintenance
// pass, so read-path probes on that column hit a warm index instead of
// scanning or (on the hash backend) paying a per-query transient build.
// New validates the declaration against the Spec and fails fast on an
// unknown peer, relation, or column. Declaring the same index twice is
// harmless.
func WithSecondaryIndex(owner, relation, column string) Option {
	return func(c *config) {
		c.secIdx = append(c.secIdx, secIndexSpec{owner: owner, relation: relation, column: column})
	}
}

// WithQueryCache sizes each view's query-result cache: entries is the
// per-view LRU capacity. The cache serves repeated reads without
// re-evaluation and is invalidated precisely — a maintenance pass
// touching relation R evicts only cached queries whose body mentions R,
// via per-table generation counters, so a stale answer is never served.
// Without this option every view caches up to a default number of
// entries; entries <= 0 disables caching entirely.
func WithQueryCache(entries int) Option {
	return func(c *config) {
		if entries <= 0 {
			entries = -1
		}
		c.opts.QueryCacheSize = entries
	}
}

// WithLegacyQueryPlanner reverts read-path queries to the fixed greedy
// join order maintenance plans use, instead of cost-based ordering from
// table statistics. Results are identical either way (the plan
// equivalence property test pins this down); this exists as the
// benchmark baseline and as an escape hatch.
func WithLegacyQueryPlanner() Option {
	return func(c *config) { c.opts.LegacyQueryPlanner = true }
}

// WithTrustFor installs (or overrides) a peer's trust policy. The Spec
// passed to New is not mutated: New builds the System over a copy with
// the merged policy map, so one parsed Spec can safely back several
// Systems with different trust configurations.
func WithTrustFor(peer string, pol *TrustPolicy) Option {
	return func(c *config) {
		if c.policies == nil {
			c.policies = make(map[string]*trust.Policy)
		}
		c.policies[peer] = pol
	}
}
