// Command orchestralint is the repository's invariant checker: a suite
// of analyzers that mechanically enforce the concurrency, durability,
// and hot-path disciplines PRs 1–5 introduced (see DESIGN.md "Enforced
// invariants"). It runs standalone
//
//	orchestralint [-json] ./...
//
// or as a vet tool, which is how `make lint` and CI invoke it so one
// command covers the custom suite:
//
//	go vet -vettool=bin/orchestralint ./...
//
// Suppressions are explicit and reasoned:
//
//	//orchestralint:ignore <analyzer> <why this site is exempt>
package main

import (
	"orchestra/internal/lint/analysis"
	"orchestra/internal/lint/analyzers/atomicwrite"
	"orchestra/internal/lint/analyzers/ctxflow"
	"orchestra/internal/lint/analyzers/errcmp"
	"orchestra/internal/lint/analyzers/locksafe"
	"orchestra/internal/lint/analyzers/planorder"
	"orchestra/internal/lint/analyzers/rowintern"
	"orchestra/internal/lint/driver"
)

// Suite is the full analyzer set, in diagnostic-stability order.
var Suite = []*analysis.Analyzer{
	atomicwrite.Analyzer,
	ctxflow.Analyzer,
	errcmp.Analyzer,
	locksafe.Analyzer,
	planorder.Analyzer,
	rowintern.Analyzer,
}

func main() {
	driver.Main(Suite)
}
