// Command workloadgen emits a synthetic CDSS spec file (peers, mappings,
// and base edit logs) generated per the paper's §6.1 methodology, in the
// format cmd/orchestra consumes. Useful for eyeballing generated
// configurations and for driving the CLI at arbitrary scales.
//
// Usage:
//
//	workloadgen -peers 5 -topology chain -dataset integer -base 20 -seed 42 > wl.cdss
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"orchestra"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	peers := flag.Int("peers", 3, "number of peers")
	topology := flag.String("topology", "chain", "chain, complete, or random")
	attrMode := flag.String("attrs", "", "attribute mode: random, shared, nested (default: random; complete topology forces shared)")
	dataset := flag.String("dataset", "integer", "integer or string")
	base := flag.Int("base", 10, "base entries per peer")
	cycles := flag.Int("cycles", 0, "extra topology cycles (requires -attrs nested or shared)")
	neighbors := flag.Int("neighbors", 2, "average neighbors for random topology")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	cfg := orchestra.WorkloadConfig{
		Peers:        *peers,
		AvgNeighbors: *neighbors,
		ExtraCycles:  *cycles,
		Seed:         *seed,
	}
	switch *topology {
	case "chain":
		cfg.Topology = orchestra.TopologyChain
	case "complete":
		cfg.Topology = orchestra.TopologyComplete
	case "random":
		cfg.Topology = orchestra.TopologyRandom
	default:
		return fmt.Errorf("unknown topology %q", *topology)
	}
	switch *attrMode {
	case "random":
		cfg.AttrMode = orchestra.AttrsRandom
	case "shared":
		cfg.AttrMode = orchestra.AttrsShared
	case "nested":
		cfg.AttrMode = orchestra.AttrsNested
	case "":
		if cfg.Topology == orchestra.TopologyComplete || *cycles > 0 {
			cfg.AttrMode = orchestra.AttrsShared
		}
	default:
		return fmt.Errorf("unknown attribute mode %q", *attrMode)
	}
	switch *dataset {
	case "integer":
		cfg.Dataset = orchestra.DatasetInteger
	case "string":
		cfg.Dataset = orchestra.DatasetString
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}

	w, err := orchestra.NewWorkload(cfg)
	if err != nil {
		return err
	}
	file := &orchestra.SpecFile{Spec: w.Spec}
	for _, peer := range w.PeerNames() {
		for _, e := range w.GenInsertions(peer, *base) {
			file.Edits = append(file.Edits, orchestra.PeerEdit{Peer: peer, Edit: e})
		}
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintf(out, "# generated workload: peers=%d topology=%s attrs=%s dataset=%s base=%d cycles=%d seed=%d\n",
		*peers, cfg.Topology, cfg.AttrMode, cfg.Dataset, *base, *cycles, *seed)
	_, err = out.WriteString(orchestra.RenderSpec(file))
	return err
}
