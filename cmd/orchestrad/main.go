// Command orchestrad runs the CDSS publication service — the central
// storage through which peers share their edit logs (paper §2: update
// exchange "publishes P's local edit log — making it globally available
// via central or distributed storage"). Clients connect with
// orchestra.NewHTTPBus.
//
// Usage:
//
//	orchestrad -addr :8344 -store publications.log [-spec confed.cdss]
//	           [-state dir] [-view owner] [-refresh 2s] [-admin-token T]
//	           [-trace-buffer 64]
//
// With -spec, incoming publications are validated against the CDSS
// description (peers may only edit their own relations). With -store,
// accepted publications are durably appended and reloaded on restart.
//
// With -admin-token (requires -spec), the daemon additionally serves
// authenticated spec-evolution endpoints, sharing one token gate with
// the -spec validation machinery they re-point:
//
//	POST   /spec/mapping      body: "m9: U(n,c) -> C(n,n)"   add a mapping
//	DELETE /spec/mapping?id=m9                                remove a mapping
//	GET    /spec                                              current spec
//
// Requests must carry "Authorization: Bearer <token>". An accepted
// change evolves the durable view's System in place (under -state) and
// swaps publication validation onto the evolved spec, so the next
// publish is judged under the confederation the admin just configured.
//
// With -state (requires -spec and -store), the daemon is durable
// end-to-end in one process: besides the durable publication log it
// maintains a materialized view of the confederation (the -view owner;
// default the global trust-all view, or "all" for every peer's view
// plus the global one), and serves the curated instances at
// GET /instance?rel=R[&owner=P]. Views exchange on publish — every
// accepted publication wakes the exchange loop, which imports the whole
// pending run as one coalesced pass — with the -refresh ticker as a
// fallback; "-view all" runs the per-view passes concurrently through
// the exchange scheduler (bounded by -exchange-parallelism). Completed
// exchanges checkpoint into the state directory; on restart each view
// is recovered from its snapshot and fast-forwarded past its persisted
// cursor instead of re-exchanging from publication zero.
//
// Operations plane (always on; see DESIGN.md "Observability"):
//
//	GET /healthz       liveness: the process serves requests
//	GET /readyz        readiness: bus reachable, state dir open, views warm
//	GET /metrics       Prometheus text format (exchange pass timings,
//	                   per-view bus lag, coalescing cancellation ratio,
//	                   checkpoint age, publish/append/HTTP telemetry)
//	GET /debug/trace   last N exchange pass traces as JSON span trees
//	                   (?last=N; requires -admin-token, Bearer auth)
//
// Every request is access-logged (method, path, status, duration, peer).
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight requests
// drain, the view takes a final checkpoint, and the publication log
// closes on a frame boundary.
//
// Protocol: POST /publish, GET /since?cursor=N (see internal/share).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"orchestra"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	storePath := flag.String("store", "", "append-only publication log file (empty = in-memory only)")
	specPath := flag.String("spec", "", "CDSS spec file to validate publications against")
	statePath := flag.String("state", "", "state directory for a durable materialized view (requires -spec and -store)")
	viewOwner := flag.String("view", "", "owner of the maintained view; empty = global trust-all view, \"all\" = every peer view plus the global one")
	refresh := flag.Duration("refresh", 2*time.Second, "fallback interval between exchanges (publications also trigger one immediately)")
	exchPar := flag.Int("exchange-parallelism", 0, "bound on concurrent per-view exchange passes under -view all (0 = GOMAXPROCS)")
	adminToken := flag.String("admin-token", "", "bearer token for the spec-evolution admin endpoints and /debug/trace (requires -spec for the former)")
	traceBuf := flag.Int("trace-buffer", 64, "exchange pass traces retained for /debug/trace")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var parsed *orchestra.SpecFile
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		var perr error
		parsed, perr = orchestra.ParseSpec(f)
		f.Close()
		if perr != nil {
			log.Fatalf("orchestrad: %v", perr)
		}
		log.Printf("validating against %s (%d peers, %d mappings)",
			*specPath, len(parsed.Spec.Universe.Peers()), len(parsed.Spec.Mappings))
	}
	if *statePath != "" {
		if parsed == nil || *storePath == "" {
			log.Fatal("orchestrad: -state requires -spec and -store (durable views need a durable bus)")
		}
		if *refresh <= 0 {
			log.Fatalf("orchestrad: -refresh must be positive, got %v", *refresh)
		}
	}

	d, err := newDaemon(daemonConfig{
		storePath:  *storePath,
		statePath:  *statePath,
		viewOwner:  *viewOwner,
		refresh:    *refresh,
		exchPar:    *exchPar,
		adminToken: *adminToken,
		traceCap:   *traceBuf,
	}, parsed)
	if err != nil {
		log.Fatalf("orchestrad: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("orchestrad: %v", err)
	}

	if *statePath != "" {
		// The view exchanges through the daemon's own HTTP bus, so its
		// persisted cursors refer to the same durable publication
		// sequence every other node sees.
		if err := d.enableViews("http://" + hostPort(ln.Addr())); err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
	}

	if *adminToken != "" {
		if parsed == nil {
			log.Fatal("orchestrad: -admin-token requires -spec (evolution needs a confederation description)")
		}
		registerAdmin(d.mux, *adminToken, parsed.Spec, d.srv, d.sys)
		log.Print("admin endpoints enabled (/spec, /spec/mapping, /debug/trace)")
	}

	httpSrv := &http.Server{Handler: d.handler}
	go func() {
		<-ctx.Done()
		log.Print("orchestrad: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("orchestrad: shutdown: %v", err)
		}
	}()

	var exchanges sync.WaitGroup
	if d.sys != nil {
		// This must run after httpSrv.Serve starts: the exchange goes
		// through the daemon's own HTTP bus, so running it on the main
		// goroutine would deadlock against the unserved listener.
		exchanges.Add(1)
		go func() {
			defer exchanges.Done()
			d.runExchangeLoop(ctx)
		}()
	}

	log.Printf("orchestrad listening on %s", ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Drain the exchange loop before the final checkpoint so the
	// snapshot observes a quiescent view.
	exchanges.Wait()
	if d.sys != nil {
		if err := d.sys.Checkpoint(context.Background()); err != nil {
			log.Printf("orchestrad: final checkpoint: %v", err)
		}
		if err := d.sys.Close(); err != nil {
			log.Printf("orchestrad: closing system: %v", err)
		}
	}
	// Closing the publication log last guarantees the durable sequence
	// ends on a frame boundary.
	if err := d.srv.Close(); err != nil {
		log.Printf("orchestrad: closing store: %v", err)
	}
	log.Print("orchestrad: shut down cleanly")
}

// hostPort renders a listener address for client use, substituting
// loopback for the unspecified host (":8344" listens on all
// interfaces; the daemon's own view client dials loopback).
func hostPort(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return addr.String()
	}
	if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
