// Command orchestrad runs the CDSS publication service — the central
// storage through which peers share their edit logs (paper §2: update
// exchange "publishes P's local edit log — making it globally available
// via central or distributed storage"). Clients connect with
// orchestra.NewHTTPBus.
//
// Usage:
//
//	orchestrad -addr :8344 -store publications.log [-spec confed.cdss]
//	           [-state dir] [-view owner] [-refresh 2s] [-admin-token T]
//	           [-trace-buffer 64] [-bus URL] [-profile-threshold D]
//
// With -spec, incoming publications are validated against the CDSS
// description (peers may only edit their own relations). With -store,
// accepted publications are durably appended and reloaded on restart.
// With -bus, the maintained views exchange against ANOTHER node's
// publication service instead of this daemon's own bus — the follower
// topology: node A runs -store and owns the durable publication
// sequence, node B runs -bus http://A -state and maintains its views
// over A's bus. The follower subscribes to A's delta stream
// (GET /watch) and imports each publication as it is pushed, so it
// converges with sub-second latency; the -refresh ticker remains as a
// safety net, and against an old node without streaming endpoints the
// follower degrades to polling automatically.
//
// With -admin-token (requires -spec), the daemon additionally serves
// authenticated spec-evolution endpoints, sharing one token gate with
// the -spec validation machinery they re-point:
//
//	POST   /spec/mapping      body: "m9: U(n,c) -> C(n,n)"   add a mapping
//	DELETE /spec/mapping?id=m9                                remove a mapping
//	GET    /spec                                              current spec
//
// Requests must carry "Authorization: Bearer <token>". An accepted
// change evolves the durable view's System in place (under -state) and
// swaps publication validation onto the evolved spec, so the next
// publish is judged under the confederation the admin just configured.
//
// With -state (requires -spec and -store), the daemon is durable
// end-to-end in one process: besides the durable publication log it
// maintains a materialized view of the confederation (the -view owner;
// default the global trust-all view, or "all" for every peer's view
// plus the global one), and serves the curated instances at
// GET /instance?rel=R[&owner=P]. Views exchange on publish — every
// accepted publication wakes the exchange loop, which imports the whole
// pending run as one coalesced pass — with the -refresh ticker as a
// fallback; "-view all" runs the per-view passes concurrently through
// the exchange scheduler (bounded by -exchange-parallelism). Completed
// exchanges checkpoint into the state directory; on restart each view
// is recovered from its snapshot and fast-forwarded past its persisted
// cursor instead of re-exchanging from publication zero.
//
// Operations plane (always on; see DESIGN.md "Observability"):
//
//	GET /healthz            liveness: the process serves requests
//	GET /readyz             readiness: bus reachable, state dir open, views warm
//	GET /metrics            Prometheus text format (exchange pass timings,
//	                        per-view bus lag, query latency histograms,
//	                        checkpoint age, publish/append/HTTP telemetry,
//	                        build info and process uptime)
//	GET /debug/trace        last N exchange pass traces as JSON span trees
//	                        (?last=N), or one publication's end-to-end
//	                        lineage (?pub=<trace-id>); requires
//	                        -admin-token, Bearer auth
//	GET /debug/slowqueries  captured slow-query records (?last=N; gated
//	                        like /debug/trace)
//	GET /debug/pprof/...    net/http/pprof, absent without -admin-token
//	GET /query              conjunctive query over a maintained view
//	                        (?q=...&owner=P&nulls=1; requires -state)
//
// Logging is structured JSON on stderr (log/slog): one record per
// request carrying method, path, status, duration, peer, a per-request
// id, and — when the request carried a traceparent header — the
// publication trace id, so a publication can be followed from the
// access log into /debug/trace. With -profile-threshold, an exchange
// pass slower than the threshold arms a CPU profile of the next pass,
// saved under <statedir>/profiles (newest 8 kept).
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight requests
// drain, the view takes a final checkpoint, and the publication log
// closes on a frame boundary.
//
// Protocol: POST /publish, GET /since?cursor=N, GET /fetch?cursor=C,
// GET /horizon, GET /watch?cursor=C (see internal/share).
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"orchestra"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	storePath := flag.String("store", "", "append-only publication log file (empty = in-memory only)")
	specPath := flag.String("spec", "", "CDSS spec file to validate publications against")
	statePath := flag.String("state", "", "state directory for a durable materialized view (requires -spec and a durable bus: -store or -bus)")
	viewOwner := flag.String("view", "", "owner of the maintained view; empty = global trust-all view, \"all\" = every peer view plus the global one")
	refresh := flag.Duration("refresh", 2*time.Second, "fallback interval between exchanges (publications also trigger one immediately)")
	exchPar := flag.Int("exchange-parallelism", 0, "bound on concurrent per-view exchange passes under -view all (0 = GOMAXPROCS)")
	adminToken := flag.String("admin-token", "", "bearer token for the spec-evolution admin endpoints and the /debug surface (requires -spec for the former)")
	traceBuf := flag.Int("trace-buffer", 64, "exchange pass traces retained for /debug/trace")
	busURL := flag.String("bus", "", "exchange the maintained views against another node's publication service at this URL instead of the local bus")
	profThresh := flag.Duration("profile-threshold", 0, "exchange pass duration that arms a CPU profile of the next pass (0 disables; requires -state)")
	slowQuery := flag.Duration("slow-query", 0, "query latency above which the query is captured into /debug/slowqueries (0 = 250ms default, negative disables)")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	slog.SetDefault(logger)
	die := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var parsed *orchestra.SpecFile
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			die("opening spec", "err", err)
		}
		var perr error
		parsed, perr = orchestra.ParseSpec(f)
		f.Close()
		if perr != nil {
			die("parsing spec", "err", perr)
		}
		logger.Info("validating publications", "spec", *specPath,
			"peers", len(parsed.Spec.Universe.Peers()), "mappings", len(parsed.Spec.Mappings))
	}
	if *statePath != "" {
		if parsed == nil || (*storePath == "" && *busURL == "") {
			die("-state requires -spec and a durable bus (-store, or -bus pointing at a durable node)")
		}
		if *refresh <= 0 {
			die("-refresh must be positive", "got", *refresh)
		}
	}

	d, err := newDaemon(daemonConfig{
		storePath:        *storePath,
		statePath:        *statePath,
		viewOwner:        *viewOwner,
		refresh:          *refresh,
		exchPar:          *exchPar,
		adminToken:       *adminToken,
		traceCap:         *traceBuf,
		busURL:           *busURL,
		profileThreshold: *profThresh,
		slowQuery:        *slowQuery,
		logger:           logger,
	}, parsed)
	if err != nil {
		die("starting daemon", "err", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		die("listening", "addr", *addr, "err", err)
	}

	if *statePath != "" {
		// Absent -bus, the view exchanges through the daemon's own HTTP
		// bus, so its persisted cursors refer to the same durable
		// publication sequence every other node sees.
		if err := d.enableViews("http://" + hostPort(ln.Addr())); err != nil {
			die("enabling views", "err", err)
		}
	}

	if *adminToken != "" {
		if parsed == nil {
			die("-admin-token requires -spec (evolution needs a confederation description)")
		}
		registerAdmin(d.mux, *adminToken, parsed.Spec, d.srv, d.sys)
		logger.Info("admin endpoints enabled",
			"endpoints", "/spec, /spec/mapping, /debug/trace, /debug/slowqueries, /debug/pprof")
	}

	httpSrv := &http.Server{Handler: d.handler}
	go func() {
		<-ctx.Done()
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "err", err)
		}
	}()

	var exchanges sync.WaitGroup
	if d.sys != nil {
		// This must run after httpSrv.Serve starts: the exchange goes
		// through the daemon's own HTTP bus, so running it on the main
		// goroutine would deadlock against the unserved listener.
		exchanges.Add(1)
		go func() {
			defer exchanges.Done()
			d.runExchangeLoop(ctx)
		}()
	}

	logger.Info("listening", "addr", ln.Addr().String())
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		die("serving", "err", err)
	}
	// Drain the exchange loop before the final checkpoint so the
	// snapshot observes a quiescent view.
	exchanges.Wait()
	if d.sys != nil {
		if err := d.sys.Checkpoint(context.Background()); err != nil {
			logger.Error("final checkpoint", "err", err)
		}
		if err := d.sys.Close(); err != nil {
			logger.Error("closing system", "err", err)
		}
	}
	// Closing the publication log last guarantees the durable sequence
	// ends on a frame boundary.
	if err := d.srv.Close(); err != nil {
		logger.Error("closing store", "err", err)
	}
	logger.Info("shut down cleanly")
}

// hostPort renders a listener address for client use, substituting
// loopback for the unspecified host (":8344" listens on all
// interfaces; the daemon's own view client dials loopback).
func hostPort(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return addr.String()
	}
	if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
