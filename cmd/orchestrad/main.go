// Command orchestrad runs the CDSS publication service — the central
// storage through which peers share their edit logs (paper §2: update
// exchange "publishes P's local edit log — making it globally available
// via central or distributed storage"). Clients connect with
// orchestra.NewHTTPBus.
//
// Usage:
//
//	orchestrad -addr :8344 -store publications.log [-spec confed.cdss]
//
// With -spec, incoming publications are validated against the CDSS
// description (peers may only edit their own relations). With -store,
// accepted publications are durably appended and reloaded on restart.
//
// Protocol: POST /publish, GET /since?cursor=N (see internal/share).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"orchestra"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	storePath := flag.String("store", "", "append-only publication log file (empty = in-memory only)")
	specPath := flag.String("spec", "", "CDSS spec file to validate publications against")
	flag.Parse()

	srv := orchestra.NewBusServer()

	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		parsed, perr := orchestra.ParseSpec(f)
		f.Close()
		if perr != nil {
			log.Fatalf("orchestrad: %v", perr)
		}
		srv.ValidateAgainst(parsed.Spec)
		log.Printf("validating against %s (%d peers, %d mappings)",
			*specPath, len(parsed.Spec.Universe.Peers()), len(parsed.Spec.Mappings))
	}

	if *storePath != "" {
		reloaded, err := srv.PersistTo(*storePath)
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		defer srv.Close()
		log.Printf("persisting to %s (%d publications reloaded)", *storePath, reloaded)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "ok %d publications\n", srv.Len())
	})
	log.Printf("orchestrad listening on %s", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
