// Command orchestrad runs the CDSS publication service — the central
// storage through which peers share their edit logs (paper §2: update
// exchange "publishes P's local edit log — making it globally available
// via central or distributed storage"). Clients connect with
// orchestra.NewHTTPBus.
//
// Usage:
//
//	orchestrad -addr :8344 -store publications.log [-spec confed.cdss]
//	           [-state dir] [-view owner] [-refresh 2s] [-admin-token T]
//
// With -spec, incoming publications are validated against the CDSS
// description (peers may only edit their own relations). With -store,
// accepted publications are durably appended and reloaded on restart.
//
// With -admin-token (requires -spec), the daemon additionally serves
// authenticated spec-evolution endpoints, sharing one token gate with
// the -spec validation machinery they re-point:
//
//	POST   /spec/mapping      body: "m9: U(n,c) -> C(n,n)"   add a mapping
//	DELETE /spec/mapping?id=m9                                remove a mapping
//	GET    /spec                                              current spec
//
// Requests must carry "Authorization: Bearer <token>". An accepted
// change evolves the durable view's System in place (under -state) and
// swaps publication validation onto the evolved spec, so the next
// publish is judged under the confederation the admin just configured.
//
// With -state (requires -spec and -store), the daemon is durable
// end-to-end in one process: besides the durable publication log it
// maintains a materialized view of the confederation (the -view owner;
// default the global trust-all view, or "all" for every peer's view
// plus the global one), and serves the curated instances at
// GET /instance?rel=R[&owner=P]. Views exchange on publish — every
// accepted publication wakes the exchange loop, which imports the whole
// pending run as one coalesced pass — with the -refresh ticker as a
// fallback; "-view all" runs the per-view passes concurrently through
// the exchange scheduler (bounded by -exchange-parallelism). Completed
// exchanges checkpoint into the state directory; on restart each view
// is recovered from its snapshot and fast-forwarded past its persisted
// cursor instead of re-exchanging from publication zero.
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight requests
// drain, the view takes a final checkpoint, and the publication log
// closes on a frame boundary.
//
// Protocol: POST /publish, GET /since?cursor=N (see internal/share).
package main

import (
	"context"
	"crypto/subtle"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"orchestra"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	storePath := flag.String("store", "", "append-only publication log file (empty = in-memory only)")
	specPath := flag.String("spec", "", "CDSS spec file to validate publications against")
	statePath := flag.String("state", "", "state directory for a durable materialized view (requires -spec and -store)")
	viewOwner := flag.String("view", "", "owner of the maintained view; empty = global trust-all view, \"all\" = every peer view plus the global one")
	refresh := flag.Duration("refresh", 2*time.Second, "fallback interval between exchanges (publications also trigger one immediately)")
	exchPar := flag.Int("exchange-parallelism", 0, "bound on concurrent per-view exchange passes under -view all (0 = GOMAXPROCS)")
	adminToken := flag.String("admin-token", "", "bearer token for the spec-evolution admin endpoints (requires -spec)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := orchestra.NewBusServer()

	var parsed *orchestra.SpecFile
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		var perr error
		parsed, perr = orchestra.ParseSpec(f)
		f.Close()
		if perr != nil {
			log.Fatalf("orchestrad: %v", perr)
		}
		srv.ValidateAgainst(parsed.Spec)
		log.Printf("validating against %s (%d peers, %d mappings)",
			*specPath, len(parsed.Spec.Universe.Peers()), len(parsed.Spec.Mappings))
	}

	if *storePath != "" {
		reloaded, err := srv.PersistTo(*storePath)
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		log.Printf("persisting to %s (%d publications reloaded)", *storePath, reloaded)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("orchestrad: %v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "ok %d publications\n", srv.Len())
	})

	var sys *orchestra.System
	allViews := *viewOwner == "all"
	defaultOwner := *viewOwner
	if allViews {
		defaultOwner = "" // /instance defaults to the global view
	}
	if *statePath != "" {
		if parsed == nil || *storePath == "" {
			log.Fatal("orchestrad: -state requires -spec and -store (durable views need a durable bus)")
		}
		if *refresh <= 0 {
			log.Fatalf("orchestrad: -refresh must be positive, got %v", *refresh)
		}
		// The view exchanges through the daemon's own HTTP bus, so its
		// persisted cursors refer to the same durable publication
		// sequence every other node sees.
		selfURL := "http://" + hostPort(ln.Addr())
		sys, err = orchestra.New(parsed.Spec,
			orchestra.WithBus(orchestra.NewHTTPBus(selfURL)),
			orchestra.WithPersistence(*statePath),
			orchestra.WithExchangeParallelism(*exchPar),
		)
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		if views, err := sys.PersistedViews(); err == nil && len(views) > 0 {
			for _, vs := range views {
				log.Printf("recovered view %q at cursor %d (generation %d)", vs.Owner, vs.Cursor, vs.Generation)
			}
		}
		mux.HandleFunc("/instance", func(w http.ResponseWriter, r *http.Request) {
			rel := r.URL.Query().Get("rel")
			if rel == "" {
				http.Error(w, "missing rel parameter", http.StatusBadRequest)
				return
			}
			owner := defaultOwner
			if o := r.URL.Query().Get("owner"); o != "" {
				if !allViews && o != *viewOwner {
					http.Error(w, fmt.Sprintf("view %q is not maintained by this daemon (running with -view %q)", o, *viewOwner), http.StatusNotFound)
					return
				}
				owner = o
			}
			descs, err := sys.DescribeInstance(owner, rel)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			fmt.Fprintf(w, "%s (%d rows)\n", rel, len(descs))
			for _, d := range descs {
				fmt.Fprintln(w, d)
			}
		})
	}

	if *adminToken != "" {
		if parsed == nil {
			log.Fatal("orchestrad: -admin-token requires -spec (evolution needs a confederation description)")
		}
		registerAdmin(mux, *adminToken, parsed.Spec, srv, sys)
		log.Print("admin endpoints enabled (/spec, /spec/mapping)")
	}

	httpSrv := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		log.Print("orchestrad: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("orchestrad: shutdown: %v", err)
		}
	}()

	var exchanges sync.WaitGroup
	if sys != nil {
		// Exchange-on-publish: every accepted publication pokes the
		// exchange loop through a 1-buffered channel. A burst of
		// publications lands as at most one queued wake-up, and the pass
		// it triggers imports the whole pending run coalesced — the
		// -refresh ticker remains only as a fallback (e.g. publications
		// that raced past a pass's fetch horizon).
		kick := make(chan struct{}, 1)
		srv.OnPublish(func() {
			select {
			case kick <- struct{}{}:
			default:
			}
		})
		exchangeOnce := func() error {
			if allViews {
				_, err := sys.ExchangeAll(ctx)
				return err
			}
			_, err := sys.Exchange(ctx, *viewOwner)
			return err
		}
		exchanges.Add(1)
		go func() {
			defer exchanges.Done()
			if allViews {
				// Materialize the global view so ExchangeAll (which only
				// exchanges views that exist) maintains it from the start.
				// This must run here, not before httpSrv.Serve: the exchange
				// goes through the daemon's own HTTP bus, so doing it on the
				// main goroutine would deadlock against the unserved listener.
				if _, err := sys.Exchange(ctx, ""); err != nil && ctx.Err() == nil {
					log.Printf("orchestrad: initial exchange: %v", err)
				}
			}
			ticker := time.NewTicker(*refresh)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-kick:
				case <-ticker.C:
				}
				if err := exchangeOnce(); err != nil && ctx.Err() == nil {
					log.Printf("orchestrad: exchange: %v", err)
				}
			}
		}()
	}

	log.Printf("orchestrad listening on %s", ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Drain the exchange loop before the final checkpoint so the
	// snapshot observes a quiescent view.
	exchanges.Wait()
	if sys != nil {
		if err := sys.Checkpoint(context.Background()); err != nil {
			log.Printf("orchestrad: final checkpoint: %v", err)
		}
		if err := sys.Close(); err != nil {
			log.Printf("orchestrad: closing system: %v", err)
		}
	}
	// Closing the publication log last guarantees the durable sequence
	// ends on a frame boundary.
	if err := srv.Close(); err != nil {
		log.Printf("orchestrad: closing store: %v", err)
	}
	log.Print("orchestrad: shut down cleanly")
}

// registerAdmin mounts the spec-evolution endpoints behind one bearer-
// token gate. The verbs evolve the durable view's System in place (when
// one runs) and re-point the publication validation -spec configured, so
// the next publish is judged under the evolved confederation.
func registerAdmin(mux *http.ServeMux, token string, initial *orchestra.Spec, srv *orchestra.BusServer, sys *orchestra.System) {
	var adminMu sync.Mutex
	curSpec := initial
	authorized := func(w http.ResponseWriter, r *http.Request) bool {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return false
		}
		return true
	}
	applyDiff := func(ctx context.Context, diffText string) error {
		adminMu.Lock()
		defer adminMu.Unlock()
		d, err := orchestra.ParseSpecDiffString(diffText)
		if err != nil {
			return err
		}
		if sys != nil {
			if err := sys.ApplyDiff(ctx, d); err != nil {
				return err
			}
			curSpec = sys.Spec()
		} else {
			ns, err := orchestra.EvolveSpec(curSpec, d)
			if err != nil {
				return err
			}
			curSpec = ns
		}
		srv.ValidateAgainst(curSpec)
		log.Printf("spec evolved: %s", strings.TrimSpace(diffText))
		return nil
	}
	mux.HandleFunc("/spec/mapping", func(w http.ResponseWriter, r *http.Request) {
		if !authorized(w, r) {
			return
		}
		switch r.Method {
		case http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			decl := strings.TrimSpace(string(body))
			if decl == "" {
				http.Error(w, "empty mapping declaration", http.StatusBadRequest)
				return
			}
			if err := applyDiff(r.Context(), "add mapping "+decl); err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			fmt.Fprintf(w, "added mapping %s\n", decl)
		case http.MethodDelete:
			id := r.URL.Query().Get("id")
			if id == "" {
				http.Error(w, "missing id parameter", http.StatusBadRequest)
				return
			}
			if err := applyDiff(r.Context(), "remove mapping "+id); err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			fmt.Fprintf(w, "removed mapping %s\n", id)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/spec", func(w http.ResponseWriter, r *http.Request) {
		if !authorized(w, r) {
			return
		}
		adminMu.Lock()
		sp := curSpec
		adminMu.Unlock()
		fmt.Fprint(w, orchestra.RenderSpec(&orchestra.SpecFile{Spec: sp}))
	})
}

// hostPort renders a listener address for client use, substituting
// loopback for the unspecified host (":8344" listens on all
// interfaces; the daemon's own view client dials loopback).
func hostPort(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return addr.String()
	}
	if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
