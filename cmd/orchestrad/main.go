// Command orchestrad runs the CDSS publication service — the central
// storage through which peers share their edit logs (paper §2: update
// exchange "publishes P's local edit log — making it globally available
// via central or distributed storage"). Clients connect with
// orchestra.NewHTTPBus.
//
// Usage:
//
//	orchestrad -addr :8344 -store publications.log [-spec confed.cdss]
//	           [-state dir] [-view owner] [-refresh 2s]
//
// With -spec, incoming publications are validated against the CDSS
// description (peers may only edit their own relations). With -store,
// accepted publications are durably appended and reloaded on restart.
//
// With -state (requires -spec and -store), the daemon is durable
// end-to-end in one process: besides the durable publication log it
// maintains a materialized view of the confederation (the -view owner;
// default the global trust-all view), exchanging every -refresh
// interval and checkpointing into the state directory, and serves the
// curated instances at GET /instance?rel=R. On restart the view is
// recovered from its snapshot and fast-forwarded past its persisted
// cursor instead of re-exchanging from publication zero.
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight requests
// drain, the view takes a final checkpoint, and the publication log
// closes on a frame boundary.
//
// Protocol: POST /publish, GET /since?cursor=N (see internal/share).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"orchestra"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	storePath := flag.String("store", "", "append-only publication log file (empty = in-memory only)")
	specPath := flag.String("spec", "", "CDSS spec file to validate publications against")
	statePath := flag.String("state", "", "state directory for a durable materialized view (requires -spec and -store)")
	viewOwner := flag.String("view", "", "owner of the maintained view; empty = global trust-all view")
	refresh := flag.Duration("refresh", 2*time.Second, "how often the durable view exchanges new publications")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := orchestra.NewBusServer()

	var parsed *orchestra.SpecFile
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		var perr error
		parsed, perr = orchestra.ParseSpec(f)
		f.Close()
		if perr != nil {
			log.Fatalf("orchestrad: %v", perr)
		}
		srv.ValidateAgainst(parsed.Spec)
		log.Printf("validating against %s (%d peers, %d mappings)",
			*specPath, len(parsed.Spec.Universe.Peers()), len(parsed.Spec.Mappings))
	}

	if *storePath != "" {
		reloaded, err := srv.PersistTo(*storePath)
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		log.Printf("persisting to %s (%d publications reloaded)", *storePath, reloaded)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("orchestrad: %v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "ok %d publications\n", srv.Len())
	})

	var sys *orchestra.System
	if *statePath != "" {
		if parsed == nil || *storePath == "" {
			log.Fatal("orchestrad: -state requires -spec and -store (durable views need a durable bus)")
		}
		if *refresh <= 0 {
			log.Fatalf("orchestrad: -refresh must be positive, got %v", *refresh)
		}
		// The view exchanges through the daemon's own HTTP bus, so its
		// persisted cursors refer to the same durable publication
		// sequence every other node sees.
		selfURL := "http://" + hostPort(ln.Addr())
		sys, err = orchestra.New(parsed.Spec,
			orchestra.WithBus(orchestra.NewHTTPBus(selfURL)),
			orchestra.WithPersistence(*statePath),
		)
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		if views, err := sys.PersistedViews(); err == nil && len(views) > 0 {
			for _, vs := range views {
				log.Printf("recovered view %q at cursor %d (generation %d)", vs.Owner, vs.Cursor, vs.Generation)
			}
		}
		mux.HandleFunc("/instance", func(w http.ResponseWriter, r *http.Request) {
			rel := r.URL.Query().Get("rel")
			if rel == "" {
				http.Error(w, "missing rel parameter", http.StatusBadRequest)
				return
			}
			descs, err := sys.DescribeInstance(*viewOwner, rel)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			fmt.Fprintf(w, "%s (%d rows)\n", rel, len(descs))
			for _, d := range descs {
				fmt.Fprintln(w, d)
			}
		})
	}

	httpSrv := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		log.Print("orchestrad: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("orchestrad: shutdown: %v", err)
		}
	}()

	var exchanges sync.WaitGroup
	if sys != nil {
		exchanges.Add(1)
		go func() {
			defer exchanges.Done()
			ticker := time.NewTicker(*refresh)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if _, err := sys.Exchange(ctx, *viewOwner); err != nil && ctx.Err() == nil {
						log.Printf("orchestrad: exchange: %v", err)
					}
				}
			}
		}()
	}

	log.Printf("orchestrad listening on %s", ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	// Drain the exchange loop before the final checkpoint so the
	// snapshot observes a quiescent view.
	exchanges.Wait()
	if sys != nil {
		if err := sys.Checkpoint(context.Background()); err != nil {
			log.Printf("orchestrad: final checkpoint: %v", err)
		}
		if err := sys.Close(); err != nil {
			log.Printf("orchestrad: closing system: %v", err)
		}
	}
	// Closing the publication log last guarantees the durable sequence
	// ends on a frame boundary.
	if err := srv.Close(); err != nil {
		log.Printf("orchestrad: closing store: %v", err)
	}
	log.Print("orchestrad: shut down cleanly")
}

// hostPort renders a listener address for client use, substituting
// loopback for the unspecified host (":8344" listens on all
// interfaces; the daemon's own view client dials loopback).
func hostPort(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return addr.String()
	}
	if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
