// Command orchestrad runs the CDSS publication service — the central
// storage through which peers share their edit logs (paper §2: update
// exchange "publishes P's local edit log — making it globally available
// via central or distributed storage").
//
// Usage:
//
//	orchestrad -addr :8344 -store publications.log [-spec confed.cdss]
//
// With -spec, incoming publications are validated against the CDSS
// description (peers may only edit their own relations). With -store,
// accepted publications are durably appended and reloaded on restart.
//
// Protocol: POST /publish, GET /since?cursor=N (see internal/share).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"orchestra/internal/logstore"
	"orchestra/internal/share"
	"orchestra/internal/spec"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	storePath := flag.String("store", "", "append-only publication log file (empty = in-memory only)")
	specPath := flag.String("spec", "", "CDSS spec file to validate publications against")
	flag.Parse()

	srv := share.NewServer()

	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		parsed, perr := spec.Parse(f)
		f.Close()
		if perr != nil {
			log.Fatalf("orchestrad: %v", perr)
		}
		srv.Validate = share.SpecValidator(parsed.Spec)
		log.Printf("validating against %s (%d peers, %d mappings)",
			*specPath, len(parsed.Spec.Universe.Peers()), len(parsed.Spec.Mappings))
	}

	if *storePath != "" {
		store, err := logstore.Open(*storePath)
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		defer store.Close()
		// Reload previously persisted publications so fetch cursors
		// survive restarts.
		pubs, err := store.Replay()
		if err != nil {
			log.Fatalf("orchestrad: %v", err)
		}
		for _, p := range pubs {
			if err := srv.Preload(p.Peer, p.Log); err != nil {
				log.Fatalf("orchestrad: reloading store: %v", err)
			}
		}
		srv.Persist = store.Append
		log.Printf("persisting to %s (%d publications reloaded)", *storePath, len(pubs))
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "ok %d publications\n", srv.Len())
	})
	log.Printf("orchestrad listening on %s", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
