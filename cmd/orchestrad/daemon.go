package main

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"orchestra"
	"orchestra/internal/obs"
)

// daemonConfig collects orchestrad's knobs in testable form (main
// fills it from flags).
type daemonConfig struct {
	storePath  string
	statePath  string
	viewOwner  string // "" = global view, "all" = every peer view plus the global one
	refresh    time.Duration
	exchPar    int
	adminToken string
	traceCap   int
	// logf receives one line per request from the logging middleware
	// and the daemon's own progress messages (default log.Printf).
	logf func(format string, args ...any)
}

// daemon is the orchestrad process state: the publication service, the
// optional durable view System, the operations plane, and the HTTP
// surface. Construction (newDaemon) wires everything that does not
// need a live listener; enableViews attaches the durable System once
// the daemon's own bus URL is known.
type daemon struct {
	cfg    daemonConfig
	srv    *orchestra.BusServer
	obs    *orchestra.Observability
	sys    *orchestra.System // nil without -state
	parsed *orchestra.SpecFile

	allViews     bool
	defaultOwner string

	mux *http.ServeMux
	// handler is mux wrapped in the request-logging middleware; serve
	// this, not mux.
	handler http.Handler

	start time.Time
	// ready flips once the first exchange pass has completed (true from
	// the start for a serve-only daemon, which has no views to warm).
	ready atomic.Bool
	// globalOnce materializes the global view before the first "-view
	// all" pass — ExchangeAll only exchanges views that exist.
	globalOnce sync.Once
}

// newDaemon builds the publication service and the HTTP surface:
// the wire protocol at /, /healthz, /readyz, /metrics, and the
// admin-gated /debug/trace. parsed may be nil (no -spec).
func newDaemon(cfg daemonConfig, parsed *orchestra.SpecFile) (*daemon, error) {
	if cfg.logf == nil {
		cfg.logf = log.Printf
	}
	d := &daemon{
		cfg:          cfg,
		srv:          orchestra.NewBusServer(),
		obs:          orchestra.NewObservability(cfg.traceCap),
		parsed:       parsed,
		allViews:     cfg.viewOwner == "all",
		defaultOwner: cfg.viewOwner,
		mux:          http.NewServeMux(),
		start:        time.Now(),
	}
	if d.allViews {
		d.defaultOwner = "" // /instance defaults to the global view
	}
	if parsed != nil {
		d.srv.ValidateAgainst(parsed.Spec)
	}
	d.srv.EnableMetrics(d.obs)
	if cfg.storePath != "" {
		reloaded, err := d.srv.PersistTo(cfg.storePath)
		if err != nil {
			return nil, err
		}
		d.cfg.logf("persisting to %s (%d publications reloaded)", cfg.storePath, reloaded)
	}
	if cfg.statePath == "" {
		d.ready.Store(true)
	}

	d.mux.Handle("/", d.srv)
	d.mux.HandleFunc("/healthz", d.handleHealthz)
	d.mux.HandleFunc("/readyz", d.handleReadyz)
	d.mux.HandleFunc("/metrics", d.handleMetrics)
	d.mux.HandleFunc("/debug/trace", d.handleTrace)
	d.handler = d.logRequests(d.mux)
	return d, nil
}

// enableViews attaches the durable view System, exchanging through the
// daemon's own publication service at busURL, and mounts /instance.
// Call it after the listener exists (main) or against a test server.
func (d *daemon) enableViews(busURL string) error {
	sys, err := orchestra.New(d.parsed.Spec,
		orchestra.WithBus(orchestra.NewHTTPBus(busURL)),
		orchestra.WithPersistence(d.cfg.statePath),
		orchestra.WithExchangeParallelism(d.cfg.exchPar),
		orchestra.WithObservability(d.obs),
	)
	if err != nil {
		return err
	}
	d.sys = sys
	if views, err := sys.PersistedViews(); err == nil && len(views) > 0 {
		for _, vs := range views {
			d.cfg.logf("recovered view %q at cursor %d (generation %d)", vs.Owner, vs.Cursor, vs.Generation)
		}
	}
	d.mux.HandleFunc("/instance", d.handleInstance)
	return nil
}

// handleHealthz is the liveness probe: the process serves requests.
// It never consults the views — a daemon wedged on a long exchange is
// still alive. Readiness is /readyz's job.
func (d *daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintf(w, "ok %d publications uptime=%s\n", d.srv.Len(), time.Since(d.start).Round(time.Second))
}

// handleReadyz is the readiness probe: 200 only when the publication
// bus answers, the state directory (if any) is open, and the first
// exchange pass has completed, so the curated instances /instance
// serves reflect the bus. Each check prints one line; failures flip
// the status to 503.
func (d *daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type check struct {
		name   string
		ok     bool
		detail string
	}
	var checks []check
	if d.sys != nil {
		// Round-trips the daemon's own HTTP bus — the same path the
		// exchange loop uses.
		n, err := d.sys.BusLen(r.Context())
		if err != nil {
			checks = append(checks, check{"bus", false, err.Error()})
		} else {
			checks = append(checks, check{"bus", true, fmt.Sprintf("%d publications", n)})
		}
		if _, err := d.sys.PersistedViews(); err != nil {
			checks = append(checks, check{"state", false, err.Error()})
		} else {
			checks = append(checks, check{"state", true, d.cfg.statePath})
		}
		if d.ready.Load() {
			checks = append(checks, check{"exchange", true, "views warm"})
		} else {
			checks = append(checks, check{"exchange", false, "first exchange pending"})
		}
	} else {
		checks = append(checks, check{"bus", true, fmt.Sprintf("%d publications", d.srv.Len())})
	}
	code := http.StatusOK
	for _, c := range checks {
		if !c.ok {
			code = http.StatusServiceUnavailable
			break
		}
	}
	w.WriteHeader(code)
	for _, c := range checks {
		state := "ok"
		if !c.ok {
			state = "fail"
		}
		fmt.Fprintf(w, "%s %s: %s\n", state, c.name, c.detail)
	}
}

// handleMetrics serves the registry in Prometheus text format. When a
// System runs, a Stats snapshot first refreshes the bus-horizon gauge
// so the per-view orchestra_bus_lag series are current as of this
// scrape, not as of the last exchange.
func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if d.sys != nil {
		if _, err := d.sys.Stats(r.Context()); err != nil {
			d.cfg.logf("orchestrad: metrics stats refresh: %v", err)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := d.obs.Registry().WritePrometheus(w); err != nil {
		d.cfg.logf("orchestrad: writing metrics: %v", err)
	}
}

// traceEntry is one /debug/trace element: the raw pass record plus its
// rendered span tree.
type traceEntry struct {
	Pass  *orchestra.ExchangeTrace `json:"pass"`
	Spans *orchestra.TraceSpan     `json:"spans"`
}

// handleTrace serves the most recent exchange pass traces as JSON,
// newest first (?last=N, default 1). Traces expose tuple counts and
// relation names, so the endpoint is gated behind the admin bearer
// token: without -admin-token it is disabled outright.
func (d *daemon) handleTrace(w http.ResponseWriter, r *http.Request) {
	if d.cfg.adminToken == "" {
		http.Error(w, "trace endpoint disabled (run with -admin-token)", http.StatusForbidden)
		return
	}
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(d.cfg.adminToken)) != 1 {
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	last := 1
	if q := r.URL.Query().Get("last"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "last must be a positive integer", http.StatusBadRequest)
			return
		}
		last = n
	}
	entries := []traceEntry{} // render [] rather than null when empty
	for _, p := range d.obs.Tracer().Last(last) {
		entries = append(entries, traceEntry{Pass: p, Spans: p.SpanTree()})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		d.cfg.logf("orchestrad: writing trace: %v", err)
	}
}

// handleInstance serves a curated instance of the maintained view(s):
// GET /instance?rel=R[&owner=P].
func (d *daemon) handleInstance(w http.ResponseWriter, r *http.Request) {
	rel := r.URL.Query().Get("rel")
	if rel == "" {
		http.Error(w, "missing rel parameter", http.StatusBadRequest)
		return
	}
	owner := d.defaultOwner
	if o := r.URL.Query().Get("owner"); o != "" {
		if !d.allViews && o != d.cfg.viewOwner {
			http.Error(w, fmt.Sprintf("view %q is not maintained by this daemon (running with -view %q)", o, d.cfg.viewOwner), http.StatusNotFound)
			return
		}
		owner = o
	}
	descs, err := d.sys.DescribeInstance(owner, rel)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "%s (%d rows)\n", rel, len(descs))
	for _, desc := range descs {
		fmt.Fprintln(w, desc)
	}
}

// statusRecorder captures the status code the handler wrote (200 when
// it never called WriteHeader).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// httpPattern normalizes a request path to the mux pattern it routes
// to, bounding metric label cardinality against probe scans.
func httpPattern(path string) string {
	switch path {
	case "/publish", "/since", "/healthz", "/readyz", "/metrics",
		"/debug/trace", "/instance", "/spec", "/spec/mapping":
		return path
	default:
		return "other"
	}
}

// logRequests is the access-log middleware: one key=value line per
// request (method, path, status, duration, peer) plus the HTTP request
// counter and latency histogram, labeled by normalized pattern.
func (d *daemon) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sr, r)
		dur := time.Since(start)
		pattern := httpPattern(r.URL.Path)
		reg := d.obs.Registry()
		reg.Counter("orchestra_http_requests_total", "HTTP requests served.",
			obs.L("path", pattern), obs.L("status", strconv.Itoa(sr.status))).Inc()
		reg.Histogram("orchestra_http_request_duration_seconds",
			"Wall clock of one HTTP request.", obs.DurationBuckets(),
			obs.L("path", pattern)).Observe(dur.Seconds())
		d.cfg.logf("http method=%s path=%s status=%d dur=%s peer=%s",
			r.Method, r.URL.Path, sr.status, dur.Round(time.Microsecond), r.RemoteAddr)
	})
}

// exchangeOnce runs one pass over the maintained view(s) and flips the
// readiness flag on the first success.
func (d *daemon) exchangeOnce(ctx context.Context) error {
	var err error
	if d.allViews {
		d.globalOnce.Do(func() {
			if _, gerr := d.sys.Exchange(ctx, ""); gerr != nil && ctx.Err() == nil {
				d.cfg.logf("orchestrad: materializing global view: %v", gerr)
			}
		})
		_, err = d.sys.ExchangeAll(ctx)
	} else {
		_, err = d.sys.Exchange(ctx, d.cfg.viewOwner)
	}
	if err == nil {
		d.ready.Store(true)
	}
	return err
}

// runExchangeLoop drives the maintained views until ctx is done:
// exchange-on-publish wake-ups coalesce through a 1-buffered channel
// (a burst of publications lands as at most one queued kick, and the
// pass it triggers imports the whole pending run coalesced), with the
// -refresh ticker as a fallback for publications that raced past a
// pass's fetch horizon.
func (d *daemon) runExchangeLoop(ctx context.Context) {
	kick := make(chan struct{}, 1)
	d.srv.OnPublish(func() {
		select {
		case kick <- struct{}{}:
		default:
		}
	})
	if err := d.exchangeOnce(ctx); err != nil && ctx.Err() == nil {
		d.cfg.logf("orchestrad: initial exchange: %v", err)
	}
	ticker := time.NewTicker(d.cfg.refresh)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-kick:
		case <-ticker.C:
		}
		if err := d.exchangeOnce(ctx); err != nil && ctx.Err() == nil {
			d.cfg.logf("orchestrad: exchange: %v", err)
		}
	}
}
