package main

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"orchestra"
	"orchestra/internal/obs"
)

// daemonConfig collects orchestrad's knobs in testable form (main
// fills it from flags).
type daemonConfig struct {
	storePath  string
	statePath  string
	viewOwner  string // "" = global view, "all" = every peer view plus the global one
	refresh    time.Duration
	exchPar    int
	adminToken string
	traceCap   int
	// busURL points the maintained views at another node's publication
	// service (-bus); empty exchanges through the daemon's own bus.
	busURL string
	// profileThreshold arms automatic CPU-profile capture: an exchange
	// pass slower than this profiles the next pass into the state
	// directory (0 disables; see profile.go).
	profileThreshold time.Duration
	// slowQuery overrides the slow-query capture threshold (-slow-query;
	// 0 keeps the library default of 250ms).
	slowQuery time.Duration
	// logger receives one structured record per request from the logging
	// middleware and the daemon's own progress messages (default: JSON
	// lines to stderr).
	logger *slog.Logger
}

// daemon is the orchestrad process state: the publication service, the
// optional durable view System, the operations plane, and the HTTP
// surface. Construction (newDaemon) wires everything that does not
// need a live listener; enableViews attaches the durable System once
// the daemon's own bus URL is known.
type daemon struct {
	cfg    daemonConfig
	srv    *orchestra.BusServer
	obs    *orchestra.Observability
	sys    *orchestra.System // nil without -state
	parsed *orchestra.SpecFile

	allViews     bool
	defaultOwner string

	// prof is the automatic CPU profiler (nil unless -profile-threshold
	// and -state are set); see profile.go.
	prof *autoProfiler

	mux *http.ServeMux
	// handler is mux wrapped in the request-logging middleware; serve
	// this, not mux.
	handler http.Handler

	start time.Time
	// ready flips once the first exchange pass has completed (true from
	// the start for a serve-only daemon, which has no views to warm).
	ready atomic.Bool
	// globalOnce materializes the global view before the first "-view
	// all" pass — ExchangeAll only exchanges views that exist.
	globalOnce sync.Once
}

// newDaemon builds the publication service and the HTTP surface:
// the wire protocol at /, /healthz, /readyz, /metrics, and the
// admin-gated /debug/trace, /debug/slowqueries, and /debug/pprof.
// parsed may be nil (no -spec).
func newDaemon(cfg daemonConfig, parsed *orchestra.SpecFile) (*daemon, error) {
	if cfg.logger == nil {
		cfg.logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	d := &daemon{
		cfg:          cfg,
		srv:          orchestra.NewBusServer(),
		obs:          orchestra.NewObservability(cfg.traceCap),
		parsed:       parsed,
		allViews:     cfg.viewOwner == "all",
		defaultOwner: cfg.viewOwner,
		mux:          http.NewServeMux(),
		start:        time.Now(),
	}
	if d.allViews {
		d.defaultOwner = "" // /instance defaults to the global view
	}
	if parsed != nil {
		d.srv.ValidateAgainst(parsed.Spec)
	}
	d.srv.EnableMetrics(d.obs)
	if cfg.storePath != "" {
		reloaded, err := d.srv.PersistTo(cfg.storePath)
		if err != nil {
			return nil, err
		}
		d.cfg.logger.Info("persisting publications", "path", cfg.storePath, "reloaded", reloaded)
	}
	if cfg.statePath == "" {
		d.ready.Store(true)
	}

	d.mux.Handle("/", d.srv)
	d.mux.HandleFunc("/healthz", d.handleHealthz)
	d.mux.HandleFunc("/readyz", d.handleReadyz)
	d.mux.HandleFunc("/metrics", d.handleMetrics)
	d.mux.HandleFunc("/debug/trace", d.handleTrace)
	d.mux.HandleFunc("/debug/slowqueries", d.handleSlowQueries)
	d.registerPprof()
	d.handler = d.logRequests(d.mux)
	return d, nil
}

// registerPprof mounts net/http/pprof behind the admin token. The
// profiling surface exposes heap contents and symbol tables, so without
// -admin-token it is absent outright (404), and with one it demands the
// Bearer credential (401 otherwise).
func (d *daemon) registerPprof() {
	gate := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if d.cfg.adminToken == "" {
				http.NotFound(w, r)
				return
			}
			if !d.bearerAuthorized(w, r) {
				return
			}
			h(w, r)
		}
	}
	d.mux.HandleFunc("/debug/pprof/", gate(pprof.Index))
	d.mux.HandleFunc("/debug/pprof/cmdline", gate(pprof.Cmdline))
	d.mux.HandleFunc("/debug/pprof/profile", gate(pprof.Profile))
	d.mux.HandleFunc("/debug/pprof/symbol", gate(pprof.Symbol))
	d.mux.HandleFunc("/debug/pprof/trace", gate(pprof.Trace))
}

// bearerAuthorized checks the request's Authorization header against
// the configured admin token, writing the 401 itself on failure.
func (d *daemon) bearerAuthorized(w http.ResponseWriter, r *http.Request) bool {
	got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(d.cfg.adminToken)) != 1 {
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return false
	}
	return true
}

// enableViews attaches the durable view System, exchanging through the
// daemon's own publication service at busURL — or, with -bus, through
// another node's service — and mounts /instance. Call it after the
// listener exists (main) or against a test server.
func (d *daemon) enableViews(busURL string) error {
	if d.cfg.busURL != "" {
		busURL = d.cfg.busURL
	}
	opts := []orchestra.Option{
		orchestra.WithBus(orchestra.NewHTTPBus(busURL)),
		orchestra.WithPersistence(d.cfg.statePath),
		orchestra.WithExchangeParallelism(d.cfg.exchPar),
		orchestra.WithObservability(d.obs),
	}
	if d.cfg.slowQuery != 0 {
		opts = append(opts, orchestra.WithSlowQueryThreshold(d.cfg.slowQuery))
	}
	sys, err := orchestra.New(d.parsed.Spec, opts...)
	if err != nil {
		return err
	}
	d.sys = sys
	if views, err := sys.PersistedViews(); err == nil && len(views) > 0 {
		for _, vs := range views {
			d.cfg.logger.Info("recovered view", "view", vs.Owner, "cursor", vs.Cursor, "generation", vs.Generation)
		}
	}
	if d.cfg.profileThreshold > 0 {
		d.prof = newAutoProfiler(filepath.Join(d.cfg.statePath, "profiles"),
			d.cfg.profileThreshold, d.cfg.logger)
	}
	d.mux.HandleFunc("/instance", d.handleInstance)
	d.mux.HandleFunc("/query", d.handleQuery)
	return nil
}

// handleHealthz is the liveness probe: the process serves requests.
// It never consults the views — a daemon wedged on a long exchange is
// still alive. Readiness is /readyz's job.
func (d *daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintf(w, "ok %d publications uptime=%s\n", d.srv.Len(), time.Since(d.start).Round(time.Second))
}

// handleReadyz is the readiness probe: 200 only when the publication
// bus answers, the state directory (if any) is open, and the first
// exchange pass has completed, so the curated instances /instance
// serves reflect the bus. Each check prints one line; failures flip
// the status to 503.
func (d *daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type check struct {
		name   string
		ok     bool
		detail string
	}
	var checks []check
	if d.sys != nil {
		// Round-trips the daemon's own HTTP bus — the same path the
		// exchange loop uses.
		n, err := d.sys.BusLen(r.Context())
		if err != nil {
			checks = append(checks, check{"bus", false, err.Error()})
		} else {
			checks = append(checks, check{"bus", true, fmt.Sprintf("%d publications", n)})
		}
		if _, err := d.sys.PersistedViews(); err != nil {
			checks = append(checks, check{"state", false, err.Error()})
		} else {
			checks = append(checks, check{"state", true, d.cfg.statePath})
		}
		if d.ready.Load() {
			checks = append(checks, check{"exchange", true, "views warm"})
		} else {
			checks = append(checks, check{"exchange", false, "first exchange pending"})
		}
	} else {
		checks = append(checks, check{"bus", true, fmt.Sprintf("%d publications", d.srv.Len())})
	}
	code := http.StatusOK
	for _, c := range checks {
		if !c.ok {
			code = http.StatusServiceUnavailable
			break
		}
	}
	w.WriteHeader(code)
	for _, c := range checks {
		state := "ok"
		if !c.ok {
			state = "fail"
		}
		fmt.Fprintf(w, "%s %s: %s\n", state, c.name, c.detail)
	}
}

// handleMetrics serves the registry in Prometheus text format. When a
// System runs, a Stats snapshot first refreshes the bus-horizon gauge
// so the per-view orchestra_bus_lag series are current as of this
// scrape, not as of the last exchange.
func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if d.sys != nil {
		if _, err := d.sys.Stats(r.Context()); err != nil {
			d.cfg.logger.Error("metrics stats refresh", "err", err)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := d.obs.Registry().WritePrometheus(w); err != nil {
		d.cfg.logger.Error("writing metrics", "err", err)
	}
}

// traceEntry is one /debug/trace element: the raw pass record plus its
// rendered span tree.
type traceEntry struct {
	Pass  *orchestra.ExchangeTrace `json:"pass"`
	Spans *orchestra.TraceSpan     `json:"spans"`
}

// handleTrace serves the most recent exchange pass traces as JSON,
// newest first (?last=N, default 1), or — with ?pub=<trace-id> — one
// publication's end-to-end lineage on this node. Traces expose tuple
// counts and relation names, so the endpoint is gated behind the admin
// bearer token: without -admin-token it is disabled outright.
func (d *daemon) handleTrace(w http.ResponseWriter, r *http.Request) {
	if d.cfg.adminToken == "" {
		http.Error(w, "trace endpoint disabled (run with -admin-token)", http.StatusForbidden)
		return
	}
	if !d.bearerAuthorized(w, r) {
		return
	}
	if pub := r.URL.Query().Get("pub"); pub != "" {
		d.servePubTrace(w, pub)
		return
	}
	last := 1
	if q := r.URL.Query().Get("last"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "last must be a positive integer", http.StatusBadRequest)
			return
		}
		last = n
	}
	entries := []traceEntry{} // render [] rather than null when empty
	for _, p := range d.obs.Tracer().Last(last) {
		entries = append(entries, traceEntry{Pass: p, Spans: p.SpanTree()})
	}
	d.writeJSON(w, entries)
}

// pubTrace is /debug/trace?pub=<id>: everything this node saw of one
// publication's trace — the publish-side record (when the publish
// landed here) and every exchange pass that applied it.
type pubTrace struct {
	TraceID string               `json:"trace_id"`
	Publish *orchestra.PubRecord `json:"publish,omitempty"`
	Passes  []traceEntry         `json:"passes"`
}

func (d *daemon) servePubTrace(w http.ResponseWriter, traceID string) {
	out := pubTrace{
		TraceID: traceID,
		Publish: d.obs.PubTracer().Find(traceID),
		Passes:  []traceEntry{},
	}
	// Walk every retained pass; the tracer caps retention, not us.
	for _, p := range d.obs.Tracer().Last(1 << 20) {
		if p.TouchesTrace(traceID) {
			out.Passes = append(out.Passes, traceEntry{Pass: p, Spans: p.SpanTree()})
		}
	}
	d.writeJSON(w, out)
}

// handleSlowQueries serves the captured slow-query records as JSON,
// newest first (?last=N, default 20). Records carry raw query text, so
// like /debug/trace the endpoint requires the admin bearer token.
func (d *daemon) handleSlowQueries(w http.ResponseWriter, r *http.Request) {
	if d.cfg.adminToken == "" {
		http.Error(w, "slow-query endpoint disabled (run with -admin-token)", http.StatusForbidden)
		return
	}
	if !d.bearerAuthorized(w, r) {
		return
	}
	last := 20
	if q := r.URL.Query().Get("last"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "last must be a positive integer", http.StatusBadRequest)
			return
		}
		last = n
	}
	list := d.obs.SlowQueries().Last(last)
	if list == nil {
		list = []orchestra.SlowQuery{}
	}
	d.writeJSON(w, list)
}

// writeJSON renders v indented with the content type set.
func (d *daemon) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		d.cfg.logger.Error("writing debug JSON", "err", err)
	}
}

// handleInstance serves a curated instance of the maintained view(s):
// GET /instance?rel=R[&owner=P].
func (d *daemon) handleInstance(w http.ResponseWriter, r *http.Request) {
	rel := r.URL.Query().Get("rel")
	if rel == "" {
		http.Error(w, "missing rel parameter", http.StatusBadRequest)
		return
	}
	owner := d.defaultOwner
	if o := r.URL.Query().Get("owner"); o != "" {
		if !d.allViews && o != d.cfg.viewOwner {
			http.Error(w, fmt.Sprintf("view %q is not maintained by this daemon (running with -view %q)", o, d.cfg.viewOwner), http.StatusNotFound)
			return
		}
		owner = o
	}
	descs, err := d.sys.DescribeInstance(owner, rel)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "%s (%d rows)\n", rel, len(descs))
	for _, desc := range descs {
		fmt.Fprintln(w, desc)
	}
}

// handleQuery answers a conjunctive query over a maintained view:
// GET /query?q=ans(x)+:-+R(x)[&owner=P][&nulls=1]. Each request runs
// through the view's instrumented read path, so it lands in the
// per-query latency histograms and, past the slow threshold, the
// /debug/slowqueries ring.
func (d *daemon) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	owner := d.defaultOwner
	if o := r.URL.Query().Get("owner"); o != "" {
		if !d.allViews && o != d.cfg.viewOwner {
			http.Error(w, fmt.Sprintf("view %q is not maintained by this daemon (running with -view %q)", o, d.cfg.viewOwner), http.StatusNotFound)
			return
		}
		owner = o
	}
	rows, err := d.sys.Query(r.Context(), owner, q, r.URL.Query().Get("nulls") == "1")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "%d rows\n", len(rows))
	for _, row := range rows {
		fmt.Fprintln(w, row)
	}
}

// statusRecorder captures the status code the handler wrote (200 when
// it never called WriteHeader).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards http.Flusher through the wrapper: /watch streams
// chunked NDJSON and refuses writers that cannot flush mid-response.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// httpPattern normalizes a request path to the mux pattern it routes
// to, bounding metric label cardinality against probe scans.
func httpPattern(path string) string {
	if strings.HasPrefix(path, "/debug/pprof/") {
		return "/debug/pprof"
	}
	switch path {
	case "/publish", "/since", "/fetch", "/horizon", "/watch",
		"/healthz", "/readyz", "/metrics",
		"/debug/trace", "/debug/slowqueries", "/instance", "/query",
		"/spec", "/spec/mapping":
		return path
	default:
		return "other"
	}
}

// logRequests is the access-log middleware: one structured record per
// request (method, path, status, duration, peer, a per-request id, and
// the publication trace id when the request carried a traceparent
// header) plus the HTTP request counter and latency histogram, labeled
// by normalized pattern.
func (d *daemon) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		reqID := obs.NewSpanID()
		next.ServeHTTP(sr, r)
		dur := time.Since(start)
		pattern := httpPattern(r.URL.Path)
		reg := d.obs.Registry()
		reg.Counter("orchestra_http_requests_total", "HTTP requests served.",
			obs.L("path", pattern), obs.L("status", strconv.Itoa(sr.status))).Inc()
		reg.Histogram("orchestra_http_request_duration_seconds",
			"Wall clock of one HTTP request.", obs.DurationBuckets(),
			obs.L("path", pattern)).Observe(dur.Seconds())
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sr.status),
			slog.Duration("dur", dur),
			slog.String("peer", r.RemoteAddr),
			slog.String("request_id", reqID),
		}
		if sc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			attrs = append(attrs, slog.String("trace_id", sc.TraceID))
		}
		d.cfg.logger.Info("http", attrs...)
	})
}

// exchangeOnce runs one pass over the maintained view(s) and flips the
// readiness flag on the first success. When the auto-profiler is armed
// (the previous pass tripped -profile-threshold) the pass runs under
// the CPU profiler; afterwards the pass's wall clock may arm it.
func (d *daemon) exchangeOnce(ctx context.Context) error {
	stop := d.prof.maybeStart()
	start := time.Now()
	var err error
	if d.allViews {
		d.globalOnce.Do(func() {
			if _, gerr := d.sys.Exchange(ctx, ""); gerr != nil && ctx.Err() == nil {
				d.cfg.logger.Error("materializing global view", "err", gerr)
			}
		})
		_, err = d.sys.ExchangeAll(ctx)
	} else {
		_, err = d.sys.Exchange(ctx, d.cfg.viewOwner)
	}
	stop()
	d.prof.observePass(time.Since(start))
	if err == nil {
		d.ready.Store(true)
	}
	return err
}

// runExchangeLoop drives the maintained views until ctx is done.
// After the initial warming pass it subscribes to the bus
// (System.StartPush): each publication streamed in — local or, with
// -bus, from the remote node — triggers an immediate coalesced import,
// so followers converge with sub-second latency instead of waiting out
// the -refresh ticker. The ticker stays on as a safety net (and as the
// only driver when the bus has no subscription capability), and
// exchange-on-publish wake-ups still coalesce through a 1-buffered
// channel for publications accepted by this daemon's own service.
func (d *daemon) runExchangeLoop(ctx context.Context) {
	kick := make(chan struct{}, 1)
	d.srv.OnPublish(func() {
		select {
		case kick <- struct{}{}:
		default:
		}
	})
	if err := d.exchangeOnce(ctx); err != nil && ctx.Err() == nil {
		d.cfg.logger.Error("initial exchange", "err", err)
	}
	if stopPush, err := d.sys.StartPush(ctx); err != nil {
		d.cfg.logger.Info("push streaming unavailable; falling back to polling", "err", err)
	} else {
		defer stopPush()
		d.cfg.logger.Info("push streaming enabled")
	}
	ticker := time.NewTicker(d.cfg.refresh)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-kick:
		case <-ticker.C:
		}
		if err := d.exchangeOnce(ctx); err != nil && ctx.Err() == nil {
			d.cfg.logger.Error("exchange", "err", err)
		}
	}
}
