package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"orchestra"
)

const daemonTestSpec = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
mapping m1: G(i,c,n) -> B(i,n)
`

// logCapture collects the daemon's JSON log records for assertions (it
// is the slog handler's io.Writer; each Write is one record).
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) Write(p []byte) (int, error) {
	lc.mu.Lock()
	lc.lines = append(lc.lines, strings.TrimRight(string(p), "\n"))
	lc.mu.Unlock()
	return len(p), nil
}

func (lc *logCapture) joined() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return strings.Join(lc.lines, "\n")
}

// line returns the first captured record containing every substring.
func (lc *logCapture) line(subs ...string) string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
outer:
	for _, l := range lc.lines {
		for _, s := range subs {
			if !strings.Contains(l, s) {
				continue outer
			}
		}
		return l
	}
	return ""
}

// startDaemon builds a durable all-views daemon on temp storage and a
// test server over its handler, wiring the System through the test
// server's URL exactly as main wires it through its own listener.
func startDaemon(t *testing.T, cfg daemonConfig) (*daemon, *httptest.Server, *logCapture) {
	t.Helper()
	parsed, err := orchestra.ParseSpecString(daemonTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	lc := &logCapture{}
	cfg.logger = slog.New(slog.NewJSONHandler(lc, nil))
	if cfg.storePath == "" {
		cfg.storePath = filepath.Join(t.TempDir(), "pubs.olg")
	}
	if cfg.refresh == 0 {
		cfg.refresh = time.Hour // tests drive exchanges explicitly
	}
	d, err := newDaemon(cfg, parsed)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.handler)
	t.Cleanup(ts.Close)
	if cfg.statePath != "" {
		if err := d.enableViews(ts.URL); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.sys.Close() })
	}
	t.Cleanup(func() { d.srv.Close() })
	return d, ts, lc
}

func get(t *testing.T, url string, header ...string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthAndReadiness(t *testing.T) {
	ctx := context.Background()
	d, ts, _ := startDaemon(t, daemonConfig{statePath: t.TempDir(), viewOwner: "all"})

	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok 0 publications") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	// Before the first exchange the daemon is alive but not ready.
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "fail exchange: first exchange pending") {
		t.Fatalf("readyz before exchange: %d %q", code, body)
	}
	if err := d.exchangeOnce(ctx); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz after exchange: %d %q", code, body)
	}
	for _, want := range []string{"ok bus:", "ok state:", "ok exchange: views warm"} {
		if !strings.Contains(body, want) {
			t.Fatalf("readyz body missing %q:\n%s", want, body)
		}
	}
}

func TestReadyzServeOnly(t *testing.T) {
	// Without -state there are no views to warm: ready immediately.
	_, ts, _ := startDaemon(t, daemonConfig{})
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ok bus:") {
		t.Fatalf("serve-only readyz: %d %q", code, body)
	}
}

func TestMetricsUnderPublishLoad(t *testing.T) {
	ctx := context.Background()
	d, ts, _ := startDaemon(t, daemonConfig{statePath: t.TempDir(), viewOwner: "all"})

	bus := orchestra.NewHTTPBus(ts.URL)
	for i := 0; i < 5; i++ {
		if err := bus.Append(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(i, i, i))}); err != nil {
			t.Fatal(err)
		}
	}
	// One insert+delete pair: net-effect cancellation becomes non-zero.
	if err := bus.Append(ctx, "PGUS", orchestra.EditLog{
		orchestra.Ins("G", orchestra.MakeTuple(9, 9, 9)),
		orchestra.Del("G", orchestra.MakeTuple(9, 9, 9)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.exchangeOnce(ctx); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	// The acceptance quartet: pass-duration histogram, per-view bus
	// lag, cancellation ratio, checkpoint age — plus publish/append/HTTP
	// telemetry, all non-zero where the load implies it.
	for _, want := range []string{
		"orchestra_exchange_pass_duration_seconds_count",
		`orchestra_bus_lag{view="(global)"} 0`,
		`orchestra_bus_lag{view="PGUS"} 0`,
		"orchestra_coalesce_cancellation_ratio",
		"orchestra_checkpoint_age_seconds",
		"orchestra_exchange_publications_total",
		"orchestra_publish_accepted_total 6",
		"orchestra_bus_append_bytes_total",
		"orchestra_http_requests_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	// The pass consumed all six publications across the three views.
	if !strings.Contains(body, "orchestra_exchange_passes_total{kind=\"exchange_all\"}") {
		t.Fatalf("metrics missing exchange_all pass counter:\n%s", body)
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "orchestra_coalesce_cancellation_ratio ") {
			if strings.TrimPrefix(line, "orchestra_coalesce_cancellation_ratio ") == "0" {
				t.Fatalf("cancellation ratio stayed zero despite insert+delete pair:\n%s", body)
			}
		}
	}
}

func TestTraceEndpointGating(t *testing.T) {
	ctx := context.Background()

	// Without -admin-token the endpoint is disabled outright.
	_, tsOpen, _ := startDaemon(t, daemonConfig{})
	if code, body := get(t, tsOpen.URL+"/debug/trace"); code != http.StatusForbidden || !strings.Contains(body, "admin-token") {
		t.Fatalf("ungated trace: %d %q", code, body)
	}

	d, ts, _ := startDaemon(t, daemonConfig{statePath: t.TempDir(), viewOwner: "all", adminToken: "sekrit"})
	if code, _ := get(t, ts.URL+"/debug/trace"); code != http.StatusUnauthorized {
		t.Fatalf("missing token: %d", code)
	}
	if code, _ := get(t, ts.URL+"/debug/trace", "Authorization", "Bearer wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d", code)
	}
	if code, _ := get(t, ts.URL+"/debug/trace?last=0", "Authorization", "Bearer sekrit"); code != http.StatusBadRequest {
		t.Fatalf("last=0 accepted: %d", code)
	}

	bus := orchestra.NewHTTPBus(ts.URL)
	if err := bus.Append(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if err := d.exchangeOnce(ctx); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL+"/debug/trace?last=1", "Authorization", "Bearer sekrit")
	if code != http.StatusOK {
		t.Fatalf("trace: %d %q", code, body)
	}
	var entries []struct {
		Pass struct {
			Kind   string `json:"kind"`
			WallNS int64  `json:"wall_ns"`
			Views  []struct {
				View   string `json:"view"`
				WallNS int64  `json:"wall_ns"`
			} `json:"views"`
		} `json:"pass"`
		Spans struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("trace JSON: %v\n%s", err, body)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Pass.Kind != "exchange_all" || e.Spans.Name != "pass:exchange_all" {
		t.Fatalf("pass kind %q / span %q", e.Pass.Kind, e.Spans.Name)
	}
	if len(e.Pass.Views) != 3 || len(e.Spans.Children) != 3 {
		t.Fatalf("want 3 view passes (PGUS, PBioSQL, global), got %d/%d", len(e.Pass.Views), len(e.Spans.Children))
	}
}

func TestPubTraceEndpoint(t *testing.T) {
	ctx := context.Background()
	d, ts, _ := startDaemon(t, daemonConfig{statePath: t.TempDir(), viewOwner: "all", adminToken: "sekrit"})

	ctx, traceID := orchestra.NewTraceContext(ctx)
	bus := orchestra.NewHTTPBus(ts.URL)
	if err := bus.Append(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if err := d.exchangeOnce(ctx); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, ts.URL+"/debug/trace?pub="+traceID, "Authorization", "Bearer sekrit")
	if code != http.StatusOK {
		t.Fatalf("pub trace: %d %q", code, body)
	}
	var out struct {
		TraceID string `json:"trace_id"`
		Publish *struct {
			Peer   string `json:"peer"`
			Cursor int    `json:"cursor"`
			Edits  int    `json:"edits"`
		} `json:"publish"`
		Passes []struct {
			Pass struct {
				Kind  string `json:"kind"`
				Views []struct {
					View     string   `json:"view"`
					TraceIDs []string `json:"trace_ids"`
				} `json:"views"`
			} `json:"pass"`
		} `json:"passes"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("pub trace JSON: %v\n%s", err, body)
	}
	if out.TraceID != traceID {
		t.Fatalf("trace id %q, want %q", out.TraceID, traceID)
	}
	// The publish landed on this node, so its publish-side record exists.
	if out.Publish == nil || out.Publish.Peer != "PGUS" || out.Publish.Cursor != 1 || out.Publish.Edits != 1 {
		t.Fatalf("publish record wrong: %s", body)
	}
	// The exchange pass that applied the publication is linked by id.
	if len(out.Passes) == 0 {
		t.Fatalf("no passes touched trace %s:\n%s", traceID, body)
	}
	// An id nobody published yields an empty lineage, not an error.
	code, body = get(t, ts.URL+"/debug/trace?pub=ffffffffffffffffffffffffffffffff", "Authorization", "Bearer sekrit")
	if code != http.StatusOK || !strings.Contains(body, `"passes": []`) {
		t.Fatalf("unknown pub trace: %d %q", code, body)
	}
}

func TestPprofGating(t *testing.T) {
	// Without -admin-token the profiling surface is absent outright.
	_, tsOpen, _ := startDaemon(t, daemonConfig{})
	if code, _ := get(t, tsOpen.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("ungated pprof index: %d", code)
	}

	_, ts, _ := startDaemon(t, daemonConfig{adminToken: "sekrit"})
	if code, _ := get(t, ts.URL+"/debug/pprof/"); code != http.StatusUnauthorized {
		t.Fatalf("pprof without token: %d", code)
	}
	if code, _ := get(t, ts.URL+"/debug/pprof/", "Authorization", "Bearer wrong"); code != http.StatusUnauthorized {
		t.Fatalf("pprof wrong token: %d", code)
	}
	code, body := get(t, ts.URL+"/debug/pprof/", "Authorization", "Bearer sekrit")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof with token: %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/debug/pprof/goroutine?debug=1", "Authorization", "Bearer sekrit"); code != http.StatusOK {
		t.Fatalf("goroutine profile with token: %d", code)
	}
}

func TestSlowQueryEndpoint(t *testing.T) {
	ctx := context.Background()
	// 1ns threshold: every query is a slow query.
	d, ts, _ := startDaemon(t, daemonConfig{statePath: t.TempDir(), viewOwner: "all",
		adminToken: "sekrit", slowQuery: time.Nanosecond})
	if err := d.exchangeOnce(ctx); err != nil {
		t.Fatal(err)
	}

	if code, _ := get(t, ts.URL+"/debug/slowqueries"); code != http.StatusUnauthorized {
		t.Fatalf("slowqueries without token: %d", code)
	}

	if code, body := get(t, ts.URL+"/query?q="+`ans(i,n)+:-+G(i,c,n)`); code != http.StatusOK {
		t.Fatalf("query: %d %q", code, body)
	}
	code, body := get(t, ts.URL+"/debug/slowqueries", "Authorization", "Bearer sekrit")
	if code != http.StatusOK {
		t.Fatalf("slowqueries: %d %q", code, body)
	}
	var records []struct {
		Query   string `json:"query"`
		Outcome string `json:"outcome"`
		WallNS  int64  `json:"wall_ns"`
	}
	if err := json.Unmarshal([]byte(body), &records); err != nil {
		t.Fatalf("slowqueries JSON: %v\n%s", err, body)
	}
	if len(records) == 0 {
		t.Fatalf("no slow queries captured:\n%s", body)
	}
	r := records[0]
	if !strings.Contains(r.Query, "G(i,c,n)") || r.Outcome == "" || r.WallNS <= 0 {
		t.Fatalf("slow-query record wrong: %+v", r)
	}
	// The per-query latency histograms observed the same query.
	if code, body := get(t, ts.URL+"/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "orchestra_query_duration_seconds_count") {
		t.Fatalf("metrics missing query histogram: %d\n%s", code, body)
	}
}

func TestInstanceEdgeCases(t *testing.T) {
	ctx := context.Background()
	d, ts, _ := startDaemon(t, daemonConfig{statePath: t.TempDir(), viewOwner: "all"})

	// Exchange over the empty bus first: a maintained view whose
	// instance is simply empty is a 200 with zero rows, not an error.
	if err := d.exchangeOnce(ctx); err != nil {
		t.Fatal(err)
	}
	code, body := get(t, ts.URL+"/instance?rel=B&owner=PBioSQL")
	if code != http.StatusOK || !strings.Contains(body, "B (0 rows)") {
		t.Fatalf("empty instance: %d %q", code, body)
	}

	if code, _ := get(t, ts.URL+"/instance"); code != http.StatusBadRequest {
		t.Fatalf("missing rel: %d", code)
	}
	// Unknown owner: the System has no such peer.
	if code, body := get(t, ts.URL+"/instance?rel=G&owner=PNope"); code != http.StatusBadRequest {
		t.Fatalf("unknown owner: %d %q", code, body)
	}

	bus := orchestra.NewHTTPBus(ts.URL)
	if err := bus.Append(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if err := d.exchangeOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, ts.URL+"/instance?rel=B&owner=PBioSQL"); code != http.StatusOK || !strings.Contains(body, "B (1 rows)") {
		t.Fatalf("derived instance: %d %q", code, body)
	}
}

func TestInstanceSingleViewRejectsOtherOwners(t *testing.T) {
	ctx := context.Background()
	d, ts, _ := startDaemon(t, daemonConfig{statePath: t.TempDir(), viewOwner: ""})
	if err := d.exchangeOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, ts.URL+"/instance?rel=B&owner=PBioSQL"); code != http.StatusNotFound || !strings.Contains(body, "not maintained") {
		t.Fatalf("other owner on single-view daemon: %d %q", code, body)
	}
}

func TestRequestLogging(t *testing.T) {
	_, ts, lc := startDaemon(t, daemonConfig{})
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("nope: %d", code)
	}
	healthLine := lc.line(`"path":"/healthz"`, `"status":200`, `"method":"GET"`)
	if healthLine == "" {
		t.Fatalf("healthz request not logged as JSON:\n%s", lc.joined())
	}
	// The access record is structured and carries a request id.
	var rec map[string]any
	if err := json.Unmarshal([]byte(healthLine), &rec); err != nil {
		t.Fatalf("access log is not JSON: %v\n%s", err, healthLine)
	}
	for _, key := range []string{"dur", "peer", "request_id"} {
		if _, ok := rec[key]; !ok {
			t.Fatalf("access record missing %q:\n%s", key, healthLine)
		}
	}
	if lc.line(`"path":"/nope"`, `"status":404`) == "" {
		t.Fatalf("404 not logged:\n%s", lc.joined())
	}
}

func TestRequestLogCarriesTraceID(t *testing.T) {
	ctx := context.Background()
	_, ts, lc := startDaemon(t, daemonConfig{})
	ctx, traceID := orchestra.NewTraceContext(ctx)
	bus := orchestra.NewHTTPBus(ts.URL)
	if err := bus.Append(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if lc.line(`"path":"/publish"`, `"trace_id":"`+traceID+`"`) == "" {
		t.Fatalf("publish access record missing trace id %s:\n%s", traceID, lc.joined())
	}
}
