package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"orchestra"
)

const adminTestSpec = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
mapping m1: G(i,c,n) -> B(i,n)
`

func adminRequest(t *testing.T, mux *http.ServeMux, method, target, token, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func TestAdminEndpoints(t *testing.T) {
	ctx := context.Background()
	parsed, err := orchestra.ParseSpecString(adminTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	srv := orchestra.NewBusServer()
	srv.ValidateAgainst(parsed.Spec)
	storePath := filepath.Join(t.TempDir(), "pubs.olg")
	if _, err := srv.PersistTo(storePath); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	registerAdmin(mux, "sekrit", parsed.Spec, srv, nil)

	// No/wrong token: rejected, spec untouched.
	if rec := adminRequest(t, mux, http.MethodPost, "/spec/mapping", "", "m2: G(i,c,n) -> B(n,i)"); rec.Code != http.StatusUnauthorized {
		t.Fatalf("missing token: %d", rec.Code)
	}
	if rec := adminRequest(t, mux, http.MethodPost, "/spec/mapping", "wrong", "m2: G(i,c,n) -> B(n,i)"); rec.Code != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d", rec.Code)
	}
	if rec := adminRequest(t, mux, http.MethodGet, "/spec", "sekrit", ""); rec.Code != http.StatusOK || strings.Contains(rec.Body.String(), "m2") {
		t.Fatalf("spec dump: %d %s", rec.Code, rec.Body.String())
	}

	// Valid evolution accepted; invalid ones rejected.
	if rec := adminRequest(t, mux, http.MethodPost, "/spec/mapping", "sekrit", "m2: G(i,c,n) -> B(n,i)"); rec.Code != http.StatusOK {
		t.Fatalf("add mapping: %d %s", rec.Code, rec.Body.String())
	}
	if rec := adminRequest(t, mux, http.MethodPost, "/spec/mapping", "sekrit", "m2: G(i,c,n) -> B(n,i)"); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate id accepted: %d", rec.Code)
	}
	if rec := adminRequest(t, mux, http.MethodDelete, "/spec/mapping?id=nope", "sekrit", ""); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown removal accepted: %d", rec.Code)
	}
	if rec := adminRequest(t, mux, http.MethodDelete, "/spec/mapping?id=m1", "sekrit", ""); rec.Code != http.StatusOK {
		t.Fatalf("remove mapping: %d %s", rec.Code, rec.Body.String())
	}
	body := adminRequest(t, mux, http.MethodGet, "/spec", "sekrit", "").Body.String()
	if !strings.Contains(body, "mapping m2") || strings.Contains(body, "mapping m1:") {
		t.Fatalf("evolved spec wrong:\n%s", body)
	}

	// Validation followed the evolution: a peer added via the admin
	// endpoint... (peers go through diff files; here check that publish
	// validation still enforces ownership under the evolved spec).
	ts := httptest.NewServer(mux)
	defer ts.Close()
	bus := orchestra.NewHTTPBus(ts.URL)
	if err := bus.Append(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}); err != nil {
		t.Fatalf("legal publish rejected: %v", err)
	}
	if err := bus.Append(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(1, 2))}); err == nil {
		t.Fatal("cross-peer publish accepted under evolved spec")
	}
}

func TestAdminEndpointsWithDurableSystem(t *testing.T) {
	ctx := context.Background()
	parsed, err := orchestra.ParseSpecString(adminTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	srv := orchestra.NewBusServer()
	srv.ValidateAgainst(parsed.Spec)
	defer srv.Close()
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	sys, err := orchestra.New(parsed.Spec,
		orchestra.WithBus(orchestra.NewHTTPBus(ts.URL)),
		orchestra.WithPersistence(t.TempDir()),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	registerAdmin(mux, "sekrit", parsed.Spec, srv, sys)

	if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if rec := adminRequest(t, mux, http.MethodPost, "/spec/mapping", "sekrit", "m2: G(i,c,n) -> exists z . B(n,z)"); rec.Code != http.StatusOK {
		t.Fatalf("add mapping: %d %s", rec.Code, rec.Body.String())
	}
	// The durable view repaired in place: m2's derivation is live.
	rows, err := sys.Instance("", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("B = %v, want m1's and m2's derivations", rows)
	}
	if sys.SpecGeneration() != 1 {
		t.Fatalf("spec generation %d", sys.SpecGeneration())
	}
}
