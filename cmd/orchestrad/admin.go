package main

import (
	"context"
	"crypto/subtle"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"

	"orchestra"
)

// registerAdmin mounts the spec-evolution endpoints behind one bearer-
// token gate. The verbs evolve the durable view's System in place (when
// one runs) and re-point the publication validation -spec configured, so
// the next publish is judged under the evolved confederation.
func registerAdmin(mux *http.ServeMux, token string, initial *orchestra.Spec, srv *orchestra.BusServer, sys *orchestra.System) {
	var adminMu sync.Mutex
	curSpec := initial
	authorized := func(w http.ResponseWriter, r *http.Request) bool {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return false
		}
		return true
	}
	applyDiff := func(ctx context.Context, diffText string) error {
		adminMu.Lock()
		defer adminMu.Unlock()
		d, err := orchestra.ParseSpecDiffString(diffText)
		if err != nil {
			return err
		}
		if sys != nil {
			if err := sys.ApplyDiff(ctx, d); err != nil {
				return err
			}
			curSpec = sys.Spec()
		} else {
			ns, err := orchestra.EvolveSpec(curSpec, d)
			if err != nil {
				return err
			}
			curSpec = ns
		}
		srv.ValidateAgainst(curSpec)
		slog.Info("spec evolved", "diff", strings.TrimSpace(diffText))
		return nil
	}
	mux.HandleFunc("/spec/mapping", func(w http.ResponseWriter, r *http.Request) {
		if !authorized(w, r) {
			return
		}
		switch r.Method {
		case http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			decl := strings.TrimSpace(string(body))
			if decl == "" {
				http.Error(w, "empty mapping declaration", http.StatusBadRequest)
				return
			}
			if err := applyDiff(r.Context(), "add mapping "+decl); err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			fmt.Fprintf(w, "added mapping %s\n", decl)
		case http.MethodDelete:
			id := r.URL.Query().Get("id")
			if id == "" {
				http.Error(w, "missing id parameter", http.StatusBadRequest)
				return
			}
			if err := applyDiff(r.Context(), "remove mapping "+id); err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			fmt.Fprintf(w, "removed mapping %s\n", id)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/spec", func(w http.ResponseWriter, r *http.Request) {
		if !authorized(w, r) {
			return
		}
		adminMu.Lock()
		sp := curSpec
		adminMu.Unlock()
		fmt.Fprint(w, orchestra.RenderSpec(&orchestra.SpecFile{Spec: sp}))
	})
}
