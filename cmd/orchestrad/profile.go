package main

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync/atomic"
	"time"
)

// profileKeep bounds how many automatic CPU profiles the state
// directory retains; older captures are pruned after each new one.
const profileKeep = 8

// autoProfiler captures a CPU profile of an exchange pass without
// anyone watching: a pass slower than the threshold arms it, and the
// NEXT pass runs under runtime/pprof, with the result written under
// <statedir>/profiles. Profiling the follow-up pass rather than the
// slow one keeps the profiler entirely off the hot path in the normal
// case — slow passes come in runs (a backlogged bus, a pathological
// mapping), so the next pass is representative of the same regime.
type autoProfiler struct {
	thresholdNS int64
	dir         string
	logger      *slog.Logger
	armed       atomic.Bool
	seq         atomic.Int64
}

func newAutoProfiler(dir string, threshold time.Duration, logger *slog.Logger) *autoProfiler {
	return &autoProfiler{thresholdNS: threshold.Nanoseconds(), dir: dir, logger: logger}
}

// maybeStart begins a CPU profile when the profiler is armed; the
// returned stop closes the profile and prunes old captures. Nil-safe:
// without a profiler both halves are no-ops.
func (ap *autoProfiler) maybeStart() func() {
	if ap == nil || !ap.armed.CompareAndSwap(true, false) {
		return func() {}
	}
	if err := os.MkdirAll(ap.dir, 0o755); err != nil {
		ap.logger.Error("profile dir", "err", err)
		return func() {}
	}
	path := filepath.Join(ap.dir, fmt.Sprintf("cpu-%d-%03d.pprof", time.Now().Unix(), ap.seq.Add(1)))
	f, err := os.Create(path)
	if err != nil {
		ap.logger.Error("profile create", "err", err)
		return func() {}
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another profile is already running (e.g. a /debug/pprof/profile
		// scrape); skip this capture rather than fight over the profiler.
		f.Close()
		os.Remove(path)
		ap.logger.Warn("cpu profile skipped", "err", err)
		return func() {}
	}
	ap.logger.Info("cpu profile started", "path", path)
	return func() {
		pprof.StopCPUProfile()
		f.Close()
		ap.prune()
	}
}

// observePass arms the profiler when a pass exceeded the threshold.
func (ap *autoProfiler) observePass(wall time.Duration) {
	if ap == nil || wall.Nanoseconds() < ap.thresholdNS {
		return
	}
	if ap.armed.CompareAndSwap(false, true) {
		ap.logger.Info("slow exchange pass; profiling the next one",
			"wall", wall, "threshold", time.Duration(ap.thresholdNS))
	}
}

// prune keeps the newest profileKeep captures. File names embed the
// capture's unix second plus a monotonic sequence, so lexicographic
// order is capture order.
func (ap *autoProfiler) prune() {
	entries, err := filepath.Glob(filepath.Join(ap.dir, "cpu-*.pprof"))
	if err != nil || len(entries) <= profileKeep {
		return
	}
	sort.Strings(entries)
	for _, p := range entries[:len(entries)-profileKeep] {
		os.Remove(p)
	}
}
