// Command benchfig regenerates the paper's evaluation figures (§6,
// Figures 4–10) as text tables, or — with -json — runs the Go benchmark
// cases behind BenchmarkFig4…Fig10 and emits a machine-readable report
// (ns/op, allocs/op, bytes/op, custom metrics per figure). The JSON mode
// produces the committed BENCH_*.json snapshots that record the repo's
// performance trajectory; `make bench` writes one.
//
// With -compare, benchfig is the CI bench-regression gate: the
// candidate measurements (a fresh run, or an existing report via -in)
// are checked against a committed snapshot, and any case whose ns/op or
// allocs/op regressed by more than -threshold percent makes benchfig
// exit non-zero. `make bench-check` runs it against the newest
// committed BENCH_*.json.
//
// Usage:
//
//	benchfig                 # all figures at laptop scale, text tables
//	benchfig -fig 4          # one figure
//	benchfig -scale 5        # 5× larger base data
//	benchfig -json           # machine-readable benchmark report to stdout
//	benchfig -json -fig 5    # only Figure 5's cases
//	benchfig -json -out f.json
//	benchfig -compare BENCH_pr5.json -threshold 15            # run + gate
//	benchfig -compare BENCH_pr5.json -in BENCH_last.json      # gate two snapshots
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"orchestra"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (4-10); 0 = all")
	scale := flag.Float64("scale", 1, "base-data scale factor (1 = laptop defaults; table mode only)")
	seed := flag.Int64("seed", 42, "workload seed (table mode only)")
	jsonMode := flag.Bool("json", false, "run the Go benchmark cases and emit a JSON report")
	out := flag.String("out", "", "write output to this file instead of stdout")
	compare := flag.String("compare", "", "gate mode: check the candidate measurements against this committed BENCH_*.json snapshot; exit non-zero on regression")
	threshold := flag.Float64("threshold", 15, "regression threshold in percent for -compare (ns/op and allocs/op)")
	in := flag.String("in", "", "with -compare: take the candidate measurements from this report instead of running the benchmarks")
	flag.Parse()

	if *compare != "" {
		os.Exit(runGate(*compare, *in, *out, *threshold, *fig, *jsonMode))
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}

	if *jsonMode {
		var match func(orchestra.BenchCase) bool
		if *fig != 0 {
			match = func(c orchestra.BenchCase) bool { return c.Fig == *fig }
		}
		rep := orchestra.RunBenchCases(match, func(name string) {
			fmt.Fprintf(os.Stderr, "benchfig: running %s\n", name)
		})
		if len(rep.Results) == 0 {
			fmt.Fprintf(os.Stderr, "benchfig: no benchmark cases for figure %d\n", *fig)
			os.Exit(1)
		}
		b, err := rep.MarshalIndent()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		if _, err := dst.Write(b); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := orchestra.BenchConfig{Scale: *scale, Seed: *seed}
	var figs []int
	if *fig != 0 {
		figs = []int{*fig}
	} else {
		for n := range orchestra.BenchFigures {
			figs = append(figs, n)
		}
		sort.Ints(figs)
	}
	for _, n := range figs {
		runner, ok := orchestra.BenchFigures[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfig: no figure %d (have 4-10)\n", n)
			os.Exit(1)
		}
		table, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Fprintln(dst, table.Render())
	}
}

// runGate is the bench-regression gate: it obtains the candidate report
// (running the cases, or loading -in), optionally writes it out (-json
// -out), compares it against the committed snapshot, and reports the
// verdict. Returns the process exit code.
func runGate(comparePath, inPath, outPath string, threshold float64, fig int, jsonMode bool) int {
	old, err := orchestra.LoadBenchReport(comparePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
		return 1
	}
	var cand orchestra.BenchReport
	if inPath != "" {
		if cand, err = orchestra.LoadBenchReport(inPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			return 1
		}
	} else {
		var match func(orchestra.BenchCase) bool
		if fig != 0 {
			match = func(c orchestra.BenchCase) bool { return c.Fig == fig }
		}
		cand = orchestra.RunBenchCases(match, func(name string) {
			fmt.Fprintf(os.Stderr, "benchfig: running %s\n", name)
		})
	}
	if jsonMode {
		b, err := cand.MarshalIndent()
		if err == nil {
			if outPath != "" {
				err = os.WriteFile(outPath, b, 0o644)
			} else {
				_, err = os.Stdout.Write(b)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: writing candidate report: %v\n", err)
			return 1
		}
	}
	if old.GOOS != cand.GOOS || old.GOARCH != cand.GOARCH {
		fmt.Fprintf(os.Stderr, "benchfig: warning: comparing %s/%s against %s/%s snapshot — ns/op deltas are not meaningful across platforms\n",
			cand.GOOS, cand.GOARCH, old.GOOS, old.GOARCH)
	}
	c := orchestra.CompareBenchReports(old, cand, threshold)
	for _, name := range c.OnlyOld {
		fmt.Fprintf(os.Stderr, "benchfig: note: %s is in the snapshot but was not measured\n", name)
	}
	for _, name := range c.OnlyNew {
		fmt.Fprintf(os.Stderr, "benchfig: note: %s is new (no snapshot baseline)\n", name)
	}
	if !c.Ok() {
		fmt.Fprintf(os.Stderr, "benchfig: %d regression(s) vs %s (threshold %.0f%%):\n", len(c.Regressions), comparePath, threshold)
		for _, r := range c.Regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchfig: %d case(s) within %.0f%% of %s\n", c.Compared, threshold, comparePath)
	return 0
}
