// Command benchfig regenerates the paper's evaluation figures (§6,
// Figures 4–10) as text tables, or — with -json — runs the Go benchmark
// cases behind BenchmarkFig4…Fig10 and emits a machine-readable report
// (ns/op, allocs/op, bytes/op, custom metrics per figure). The JSON mode
// produces the committed BENCH_*.json snapshots that record the repo's
// performance trajectory; `make bench` writes one.
//
// With -compare, benchfig is the CI bench-regression gate: the
// candidate measurements (a fresh run, or an existing report via -in)
// are checked against a committed snapshot, and any case whose ns/op or
// allocs/op regressed by more than -threshold percent makes benchfig
// exit non-zero. `make bench-check` runs it against the newest
// committed BENCH_*.json.
//
// Usage:
//
//	benchfig                 # all figures at laptop scale, text tables
//	benchfig -fig 4          # one figure
//	benchfig -scale 5        # 5× larger base data
//	benchfig -json           # machine-readable benchmark report to stdout
//	benchfig -json -fig 5    # only Figure 5's cases
//	benchfig -json -case '^Serving/'   # cases selected by name regexp
//	benchfig -json -out f.json
//	benchfig -compare BENCH_pr5.json -threshold 15            # run + gate
//	benchfig -compare BENCH_pr5.json -in BENCH_last.json      # gate two snapshots
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"

	"orchestra"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (4-10); 0 = all")
	scale := flag.Float64("scale", 1, "base-data scale factor (1 = laptop defaults; table mode only)")
	seed := flag.Int64("seed", 42, "workload seed (table mode only)")
	jsonMode := flag.Bool("json", false, "run the Go benchmark cases and emit a JSON report")
	caseRe := flag.String("case", "", "regexp selecting benchmark cases by name (ablation families like Serving/ have no figure number, so -fig cannot reach them)")
	out := flag.String("out", "", "write output to this file instead of stdout")
	compare := flag.String("compare", "", "gate mode: check the candidate measurements against this committed BENCH_*.json snapshot; exit non-zero on regression")
	threshold := flag.Float64("threshold", 15, "regression threshold in percent for -compare (ns/op and allocs/op)")
	in := flag.String("in", "", "with -compare: take the candidate measurements from this report instead of running the benchmarks")
	samples := flag.Int("samples", 1, "measure each case this many times and keep each metric's minimum (noise suppression for tight-threshold gates)")
	flag.Parse()

	match, err := caseMatcher(*fig, *caseRe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
		os.Exit(1)
	}

	if *compare != "" {
		os.Exit(runGate(*compare, *in, *out, *threshold, match, *samples, *jsonMode))
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}

	if *jsonMode {
		rep := orchestra.RunBenchCasesN(match, func(name string) {
			fmt.Fprintf(os.Stderr, "benchfig: running %s\n", name)
		}, *samples)
		if len(rep.Results) == 0 {
			fmt.Fprintf(os.Stderr, "benchfig: no benchmark cases matched\n")
			os.Exit(1)
		}
		b, err := rep.MarshalIndent()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		if _, err := dst.Write(b); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := orchestra.BenchConfig{Scale: *scale, Seed: *seed}
	var figs []int
	if *fig != 0 {
		figs = []int{*fig}
	} else {
		for n := range orchestra.BenchFigures {
			figs = append(figs, n)
		}
		sort.Ints(figs)
	}
	for _, n := range figs {
		runner, ok := orchestra.BenchFigures[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfig: no figure %d (have 4-10)\n", n)
			os.Exit(1)
		}
		table, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Fprintln(dst, table.Render())
	}
}

// caseMatcher combines the -fig and -case selectors into one predicate
// (nil = run everything).
func caseMatcher(fig int, caseRe string) (func(orchestra.BenchCase) bool, error) {
	if fig == 0 && caseRe == "" {
		return nil, nil
	}
	var re *regexp.Regexp
	if caseRe != "" {
		var err error
		if re, err = regexp.Compile(caseRe); err != nil {
			return nil, fmt.Errorf("bad -case regexp: %w", err)
		}
	}
	return func(c orchestra.BenchCase) bool {
		if fig != 0 && c.Fig != fig {
			return false
		}
		return re == nil || re.MatchString(c.Name)
	}, nil
}

// runGate is the bench-regression gate: it obtains the candidate report
// (running the cases, or loading -in), optionally writes it out (-json
// -out), compares it against the committed snapshot, and reports the
// verdict. Returns the process exit code.
func runGate(comparePath, inPath, outPath string, threshold float64, match func(orchestra.BenchCase) bool, samples int, jsonMode bool) int {
	old, err := orchestra.LoadBenchReport(comparePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
		return 1
	}
	var cand orchestra.BenchReport
	if inPath != "" {
		if cand, err = orchestra.LoadBenchReport(inPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			return 1
		}
	} else {
		cand = orchestra.RunBenchCasesN(match, func(name string) {
			fmt.Fprintf(os.Stderr, "benchfig: running %s\n", name)
		}, samples)
	}
	if jsonMode {
		b, err := cand.MarshalIndent()
		if err == nil {
			if outPath != "" {
				err = os.WriteFile(outPath, b, 0o644)
			} else {
				_, err = os.Stdout.Write(b)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: writing candidate report: %v\n", err)
			return 1
		}
	}
	if old.GOOS != cand.GOOS || old.GOARCH != cand.GOARCH {
		fmt.Fprintf(os.Stderr, "benchfig: warning: comparing %s/%s against %s/%s snapshot — ns/op deltas are not meaningful across platforms\n",
			cand.GOOS, cand.GOARCH, old.GOOS, old.GOARCH)
	}
	c := orchestra.CompareBenchReports(old, cand, threshold)
	for _, name := range c.OnlyOld {
		fmt.Fprintf(os.Stderr, "benchfig: note: %s is in the snapshot but was not measured\n", name)
	}
	for _, name := range c.OnlyNew {
		fmt.Fprintf(os.Stderr, "benchfig: note: %s is new (no snapshot baseline)\n", name)
	}
	if !c.Ok() {
		fmt.Fprintf(os.Stderr, "benchfig: %d regression(s) vs %s (threshold %.0f%%):\n", len(c.Regressions), comparePath, threshold)
		for _, r := range c.Regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchfig: %d case(s) within %.0f%% of %s\n", c.Compared, threshold, comparePath)
	return 0
}
