// Command benchfig regenerates the paper's evaluation figures (§6,
// Figures 4–10) as text tables, or — with -json — runs the Go benchmark
// cases behind BenchmarkFig4…Fig10 and emits a machine-readable report
// (ns/op, allocs/op, bytes/op, custom metrics per figure). The JSON mode
// produces the committed BENCH_*.json snapshots that record the repo's
// performance trajectory; `make bench` writes one.
//
// Usage:
//
//	benchfig                 # all figures at laptop scale, text tables
//	benchfig -fig 4          # one figure
//	benchfig -scale 5        # 5× larger base data
//	benchfig -json           # machine-readable benchmark report to stdout
//	benchfig -json -fig 5    # only Figure 5's cases
//	benchfig -json -out f.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"orchestra"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (4-10); 0 = all")
	scale := flag.Float64("scale", 1, "base-data scale factor (1 = laptop defaults; table mode only)")
	seed := flag.Int64("seed", 42, "workload seed (table mode only)")
	jsonMode := flag.Bool("json", false, "run the Go benchmark cases and emit a JSON report")
	out := flag.String("out", "", "write output to this file instead of stdout")
	flag.Parse()

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}

	if *jsonMode {
		var match func(orchestra.BenchCase) bool
		if *fig != 0 {
			match = func(c orchestra.BenchCase) bool { return c.Fig == *fig }
		}
		rep := orchestra.RunBenchCases(match, func(name string) {
			fmt.Fprintf(os.Stderr, "benchfig: running %s\n", name)
		})
		if len(rep.Results) == 0 {
			fmt.Fprintf(os.Stderr, "benchfig: no benchmark cases for figure %d\n", *fig)
			os.Exit(1)
		}
		b, err := rep.MarshalIndent()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		if _, err := dst.Write(b); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := orchestra.BenchConfig{Scale: *scale, Seed: *seed}
	var figs []int
	if *fig != 0 {
		figs = []int{*fig}
	} else {
		for n := range orchestra.BenchFigures {
			figs = append(figs, n)
		}
		sort.Ints(figs)
	}
	for _, n := range figs {
		runner, ok := orchestra.BenchFigures[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfig: no figure %d (have 4-10)\n", n)
			os.Exit(1)
		}
		table, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Fprintln(dst, table.Render())
	}
}
