// Command benchfig regenerates the paper's evaluation figures (§6,
// Figures 4–10) as text tables. Absolute numbers reflect this machine and
// the in-memory substrate; the series shapes are the reproduction target
// (see EXPERIMENTS.md).
//
// Usage:
//
//	benchfig                 # all figures at laptop scale
//	benchfig -fig 4          # one figure
//	benchfig -scale 5        # 5× larger base data
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"orchestra"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (4-10); 0 = all")
	scale := flag.Float64("scale", 1, "base-data scale factor (1 = laptop defaults)")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	cfg := orchestra.BenchConfig{Scale: *scale, Seed: *seed}
	var figs []int
	if *fig != 0 {
		figs = []int{*fig}
	} else {
		for n := range orchestra.BenchFigures {
			figs = append(figs, n)
		}
		sort.Ints(figs)
	}
	for _, n := range figs {
		runner, ok := orchestra.BenchFigures[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfig: no figure %d (have 4-10)\n", n)
			os.Exit(1)
		}
		table, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println(table.Render())
	}
}
