// Command orchestra runs CDSS update exchange over a spec file and lets
// you inspect instances, provenance, and trust — the CLI face of the
// Orchestra reproduction, built entirely on the public orchestra API.
//
// Usage:
//
//	orchestra run   [-owner peer] [-strategy provenance|dred|recompute] [-backend indexed|hash] [-state dir] spec.cdss
//	orchestra query [-owner peer] [-nulls] -q "ans(x,y) :- U(x,y)" spec.cdss
//	orchestra prov  [-owner peer] -rel U -tuple "2,5" spec.cdss
//	orchestra graph [-owner peer] spec.cdss           # provenance graph in DOT
//	orchestra show  spec.cdss                          # parsed spec summary
//	orchestra evolve -state dir -diff changes.cdssd [-o evolved.cdss] spec.cdss
//	orchestra stats -state dir                         # offline state-dir dashboard
//	orchestra stats -url http://host:port              # scrape a running orchestrad
//	orchestra stats -explain "ans(x,y) :- U(x,y)" [-owner peer] spec.cdss   # query plan
//	orchestra trace -pub <trace-id> -url http://a,http://b [-token T]       # publication lineage
//
// With -state, the system runs durably out of the given directory
// (view snapshots plus a publication log): the first run seeds the bus
// from the spec file's edits, later runs recover the checkpointed view
// and replay only what it has not yet seen.
//
// evolve applies a spec-diff file to a durable state directory: the
// recovered views are incrementally repaired under the evolved spec
// (added mappings seed a fixpoint round, removed mappings delete their
// derivations via provenance), re-checkpointed, and the evolved spec is
// written to -o (default stdout) — use it as the spec file of later
// runs; the old spec file is rejected against the evolved directory.
//
// The spec format is documented in internal/spec; the diff format in
// internal/evolve (add peer / add mapping / remove mapping / trust /
// untrust directives).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"orchestra"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "orchestra:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: orchestra <run|query|prov|graph|show|evolve|stats|trace> [flags] [spec.cdss]")
	}
	cmd, rest := args[0], args[1:]
	ctx := context.Background()

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	owner := fs.String("owner", "", "peer whose view (and trust policy) to use; empty = global trust-all view")
	strategy := fs.String("strategy", "provenance", "deletion strategy: provenance, dred, or recompute")
	backend := fs.String("backend", "indexed", "engine backend: indexed (Tukwila-style) or hash (DB2-style)")
	q := fs.String("q", "", "conjunctive query, e.g. 'ans(x,y) :- U(x,y)'")
	nulls := fs.Bool("nulls", false, "include tuples with labeled nulls (superset of certain answers)")
	rel := fs.String("rel", "", "relation name for prov")
	tupleText := fs.String("tuple", "", "comma-separated tuple for prov, e.g. \"3,2\"")
	saveFile := fs.String("save", "", "write the view state to this file after processing")
	loadFile := fs.String("load", "", "restore view state from this file instead of replaying the spec's edits")
	stateDir := fs.String("state", "", "durable state directory (snapshots + publication log); reuse it across runs to recover instead of replaying")
	diffFile := fs.String("diff", "", "spec-diff file for evolve")
	outFile := fs.String("o", "", "where evolve writes the evolved spec (default stdout)")
	urlStr := fs.String("url", "", "base URL of a running orchestrad for stats (trace accepts a comma-separated list), e.g. http://localhost:7117")
	explainQ := fs.String("explain", "", "stats: render the physical query plan (join order, access paths, estimates) for this query instead of the dashboard; takes a spec file")
	pubID := fs.String("pub", "", "trace: the publication's trace id (printed by smokepub, logged by orchestrad, returned by /publish)")
	token := fs.String("token", "", "admin bearer token for trace's /debug/trace requests")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	// trace talks to running daemons only: no spec file involved.
	if cmd == "trace" {
		if fs.NArg() != 0 {
			return fmt.Errorf("trace takes no spec file (use -pub and -url)")
		}
		var urls []string
		for _, u := range strings.Split(*urlStr, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		return traceCmd(*pubID, urls, *token, out)
	}
	// stats inspects a state directory or a daemon — except -explain,
	// which compiles a query against a spec file's materialized view.
	if cmd == "stats" {
		if *explainQ != "" {
			if fs.NArg() != 1 {
				return fmt.Errorf("stats -explain expects exactly one spec file")
			}
			return explainCmd(ctx, fs.Arg(0), *explainQ, *owner, *backend, *stateDir, out)
		}
		if fs.NArg() != 0 {
			return fmt.Errorf("stats takes no spec file (use -state or -url)")
		}
		return statsCmd(*stateDir, *urlStr, out)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one spec file")
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	parsed, perr := orchestra.ParseSpec(f)
	f.Close()
	if perr != nil {
		return perr
	}

	if cmd == "show" {
		return show(parsed, out)
	}
	if cmd == "evolve" {
		return evolveCmd(ctx, parsed, *stateDir, *diffFile, *outFile, out)
	}

	var be orchestra.Backend
	switch *backend {
	case "indexed":
		be = orchestra.BackendIndexed
	case "hash":
		be = orchestra.BackendHash
	default:
		return fmt.Errorf("unknown backend %q", *backend)
	}
	var strat orchestra.DeletionStrategy
	switch *strategy {
	case "provenance":
		strat = orchestra.DeleteProvenance
	case "dred":
		strat = orchestra.DeleteDRed
	case "recompute":
		strat = orchestra.DeleteRecompute
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	sysOpts := []orchestra.Option{
		orchestra.WithBackend(be),
		orchestra.WithDeletionStrategy(strat),
	}
	if *stateDir != "" {
		sysOpts = append(sysOpts, orchestra.WithPersistence(*stateDir))
	}
	sys, err := orchestra.New(parsed.Spec, sysOpts...)
	if err != nil {
		return err
	}
	defer sys.Close()
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			return err
		}
		err = sys.RestoreSnapshot(*owner, f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		// Replay the file's edits in publication order, one publication
		// per peer-contiguous run, then exchange into the owner's view.
		// With -state the durable bus may already hold some or all of the
		// file's publications from an earlier (possibly interrupted) run;
		// SeedFileEdits publishes only the missing tail.
		if *stateDir != "" {
			if _, err := sys.SeedFileEdits(ctx, parsed); err != nil {
				return err
			}
		} else if err := sys.PublishFileEdits(ctx, parsed); err != nil {
			return err
		}
		if _, err := sys.Exchange(ctx, *owner); err != nil {
			return err
		}
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			return err
		}
		if err := sys.WriteSnapshot(*owner, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	switch cmd {
	case "run":
		return dumpInstances(sys, *owner, out)
	case "query":
		if *q == "" {
			return fmt.Errorf("query requires -q")
		}
		rows, err := sys.Query(ctx, *owner, *q, *nulls)
		if err != nil {
			return queryErrDetail(err)
		}
		for _, row := range rows {
			desc, err := sys.Describe(*owner, row)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, desc)
		}
		return nil
	case "prov":
		if *rel == "" || *tupleText == "" {
			return fmt.Errorf("prov requires -rel and -tuple")
		}
		t, err := orchestra.ParseTuple(*tupleText)
		if err != nil {
			return err
		}
		expr, err := sys.ProvenanceExpr(*owner, *rel, t)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Pv(%s%s) = %s\n", *rel, t, expr)
		return nil
	case "graph":
		dot, err := sys.GraphDot(*owner)
		if err != nil {
			return err
		}
		fmt.Fprint(out, dot)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// queryErrDetail rewraps a structured QueryError with its caret
// rendering so the CLI points at the offending fragment.
func queryErrDetail(err error) error {
	var qe *orchestra.QueryError
	if errors.As(err, &qe) {
		return fmt.Errorf("invalid query: %s", qe.Detail())
	}
	return err
}

// explainCmd materializes the owner's view from a spec file (durably
// when -state is given) and prints the physical plan the read path
// would use for the query, without evaluating it.
func explainCmd(ctx context.Context, specPath, q, owner, backend, stateDir string, out io.Writer) error {
	f, err := os.Open(specPath)
	if err != nil {
		return err
	}
	parsed, perr := orchestra.ParseSpec(f)
	f.Close()
	if perr != nil {
		return perr
	}
	var be orchestra.Backend
	switch backend {
	case "indexed":
		be = orchestra.BackendIndexed
	case "hash":
		be = orchestra.BackendHash
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}
	sysOpts := []orchestra.Option{orchestra.WithBackend(be)}
	if stateDir != "" {
		sysOpts = append(sysOpts, orchestra.WithPersistence(stateDir))
	}
	sys, err := orchestra.New(parsed.Spec, sysOpts...)
	if err != nil {
		return err
	}
	defer sys.Close()
	// Populate the instances first so the plan reflects real statistics.
	if stateDir != "" {
		if _, err := sys.SeedFileEdits(ctx, parsed); err != nil {
			return err
		}
	} else if err := sys.PublishFileEdits(ctx, parsed); err != nil {
		return err
	}
	if _, err := sys.Exchange(ctx, owner); err != nil {
		return err
	}
	plan, err := sys.ExplainQuery(ctx, owner, q)
	if err != nil {
		return queryErrDetail(err)
	}
	fmt.Fprint(out, plan)
	return nil
}

// evolveCmd applies a spec-diff file to a durable state directory and
// emits the evolved spec.
func evolveCmd(ctx context.Context, parsed *orchestra.SpecFile, stateDir, diffFile, outFile string, out io.Writer) error {
	if stateDir == "" || diffFile == "" {
		return fmt.Errorf("evolve requires -state and -diff")
	}
	df, err := os.Open(diffFile)
	if err != nil {
		return err
	}
	diff, perr := orchestra.ParseSpecDiff(df)
	df.Close()
	if perr != nil {
		return perr
	}

	sys, err := orchestra.New(parsed.Spec, orchestra.WithPersistence(stateDir))
	if err != nil {
		return err
	}
	defer sys.Close()
	// A fresh directory first seeds the bus from the spec file's edits,
	// so the evolved confederation and a from-scratch one agree on the
	// publication history.
	if _, err := sys.SeedFileEdits(ctx, parsed); err != nil {
		return err
	}
	if err := sys.ApplyDiff(ctx, diff); err != nil {
		return err
	}

	evolved := &orchestra.SpecFile{Spec: sys.Spec(), Edits: parsed.Edits}
	rendered := orchestra.RenderSpec(evolved)
	if outFile != "" {
		if err := os.WriteFile(outFile, []byte(rendered), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "applied %d operations (spec generation %d); evolved spec written to %s\n",
			len(diff.Ops), sys.SpecGeneration(), outFile)
		return nil
	}
	fmt.Fprint(out, rendered)
	return nil
}

func show(parsed *orchestra.SpecFile, out io.Writer) error {
	u := parsed.Spec.Universe
	for _, p := range u.Peers() {
		fmt.Fprintf(out, "peer %s\n", p.Name)
		for _, r := range p.Schema.Relations() {
			fmt.Fprintf(out, "  %s\n", r)
		}
	}
	for _, m := range parsed.Spec.Mappings {
		fmt.Fprintf(out, "mapping %s\n", m)
	}
	for _, p := range u.Peers() {
		if pol := parsed.Spec.Policy(p.Name); pol != nil {
			fmt.Fprint(out, pol.Describe())
		}
	}
	fmt.Fprintf(out, "%d edits\n", len(parsed.Edits))
	return nil
}

func dumpInstances(sys *orchestra.System, owner string, out io.Writer) error {
	for _, rel := range sys.RelationNames() {
		descs, err := sys.DescribeInstance(owner, rel)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s (%d rows)\n", rel, len(descs))
		for _, desc := range descs {
			fmt.Fprintf(out, "  %s\n", desc)
		}
	}
	return nil
}
