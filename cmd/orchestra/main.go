// Command orchestra runs CDSS update exchange over a spec file and lets
// you inspect instances, provenance, and trust — the CLI face of the
// Orchestra reproduction.
//
// Usage:
//
//	orchestra run   [-owner peer] [-strategy provenance|dred|recompute] [-backend indexed|hash] spec.cdss
//	orchestra query [-owner peer] [-nulls] -q "ans(x,y) :- U(x,y)" spec.cdss
//	orchestra prov  [-owner peer] -rel U -tuple "2,5" spec.cdss
//	orchestra graph [-owner peer] spec.cdss           # provenance graph in DOT
//	orchestra show  spec.cdss                          # parsed spec summary
//
// The spec format is documented in internal/spec.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"orchestra/internal/core"
	"orchestra/internal/datalog"
	"orchestra/internal/engine"
	"orchestra/internal/spec"
	"orchestra/internal/tgd"
	"orchestra/internal/value"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "orchestra:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: orchestra <run|query|prov|graph|show> [flags] spec.cdss")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	owner := fs.String("owner", "", "peer whose view (and trust policy) to use; empty = global trust-all view")
	strategy := fs.String("strategy", "provenance", "deletion strategy: provenance, dred, or recompute")
	backend := fs.String("backend", "indexed", "engine backend: indexed (Tukwila-style) or hash (DB2-style)")
	q := fs.String("q", "", "conjunctive query, e.g. 'ans(x,y) :- U(x,y)'")
	nulls := fs.Bool("nulls", false, "include tuples with labeled nulls (superset of certain answers)")
	rel := fs.String("rel", "", "relation name for prov")
	tupleText := fs.String("tuple", "", "comma-separated tuple for prov, e.g. \"3,2\"")
	saveFile := fs.String("save", "", "write the view state to this file after processing")
	loadFile := fs.String("load", "", "restore view state from this file instead of replaying the spec's edits")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one spec file")
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	parsed, perr := spec.Parse(f)
	f.Close()
	if perr != nil {
		return perr
	}

	if cmd == "show" {
		return show(parsed, out)
	}

	var be engine.Backend
	switch *backend {
	case "indexed":
		be = engine.BackendIndexed
	case "hash":
		be = engine.BackendHash
	default:
		return fmt.Errorf("unknown backend %q", *backend)
	}
	var strat core.DeletionStrategy
	switch *strategy {
	case "provenance":
		strat = core.DeleteProvenance
	case "dred":
		strat = core.DeleteDRed
	case "recompute":
		strat = core.DeleteRecompute
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	var view *core.View
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			return err
		}
		view, err = core.RestoreView(parsed.Spec, *owner, core.Options{Backend: be}, f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		var err error
		view, err = core.NewView(parsed.Spec, *owner, core.Options{Backend: be})
		if err != nil {
			return err
		}
		// Replay the file's edits in publication order as one exchange
		// per peer-contiguous run.
		var pending core.EditLog
		var pendingPeer string
		flush := func() error {
			if len(pending) == 0 {
				return nil
			}
			_, err := view.ApplyEdits(pending, strat)
			pending, pendingPeer = nil, ""
			return err
		}
		for _, pe := range parsed.Edits {
			if pendingPeer != "" && pe.Peer != pendingPeer {
				if err := flush(); err != nil {
					return err
				}
			}
			pendingPeer = pe.Peer
			pending = append(pending, pe.Edit)
		}
		if err := flush(); err != nil {
			return err
		}
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			return err
		}
		if err := view.WriteSnapshot(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	switch cmd {
	case "run":
		return dumpInstances(view, out)
	case "query":
		if *q == "" {
			return fmt.Errorf("query requires -q")
		}
		rows, err := view.Query(*q, *nulls)
		if err != nil {
			return err
		}
		for _, row := range rows {
			fmt.Fprintln(out, renderTuple(view, row))
		}
		return nil
	case "prov":
		if *rel == "" || *tupleText == "" {
			return fmt.Errorf("prov requires -rel and -tuple")
		}
		t, err := parseTuple(*tupleText)
		if err != nil {
			return err
		}
		expr := view.ProvOf(*rel, t)
		fmt.Fprintf(out, "Pv(%s%s) = %s\n", *rel, t, expr)
		return nil
	case "graph":
		fmt.Fprint(out, view.Graph().Dot(nil))
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func show(parsed *spec.File, out io.Writer) error {
	u := parsed.Spec.Universe
	for _, p := range u.Peers() {
		fmt.Fprintf(out, "peer %s\n", p.Name)
		for _, r := range p.Schema.Relations() {
			fmt.Fprintf(out, "  %s\n", r)
		}
	}
	for _, m := range parsed.Spec.Mappings {
		fmt.Fprintf(out, "mapping %s\n", m)
	}
	for _, p := range u.Peers() {
		if pol := parsed.Spec.Policy(p.Name); pol != nil {
			fmt.Fprint(out, pol.Describe())
		}
	}
	fmt.Fprintf(out, "%d edits\n", len(parsed.Edits))
	return nil
}

func dumpInstances(view *core.View, out io.Writer) error {
	for _, rel := range view.Spec().Universe.Relations() {
		tbl := view.Instance(rel.Name)
		fmt.Fprintf(out, "%s (%d rows)\n", rel.Name, tbl.Len())
		for _, row := range tbl.Rows() {
			fmt.Fprintf(out, "  %s\n", renderTuple(view, row))
		}
	}
	return nil
}

// renderTuple displays labeled nulls through their Skolem structure.
func renderTuple(view *core.View, row value.Tuple) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = view.Skolems().Describe(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// parseTuple parses "3,2" / "3,'x'" into a tuple of constants.
func parseTuple(text string) (value.Tuple, error) {
	var t value.Tuple
	for _, tok := range strings.Split(text, ",") {
		term, err := tgd.ParseTerm(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		if term.Kind != datalog.TermConst {
			return nil, fmt.Errorf("tuple component %q is not a constant", tok)
		}
		t = append(t, term.Const)
	}
	return t, nil
}
