package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

// TestStatsStateDir builds a durable state directory with one CLI run
// and then renders it with `orchestra stats -state`.
func TestStatsStateDir(t *testing.T) {
	path := writeSpec(t)
	state := filepath.Join(t.TempDir(), "state")
	if err := run([]string{"run", "-state", state, path}, io.Discard); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"stats", "-state", state}, &out); err != nil {
		t.Fatalf("stats -state: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"state directory " + state,
		"spec fingerprint",
		"3 publications (bus.olg)", // the spec file's three peer-contiguous edit runs
		"VIEW", "CURSOR", "PENDING", "SNAPSHOT AGE",
		"(global)", // the default -owner "" view was checkpointed
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stats -state output missing %q:\n%s", want, got)
		}
	}
	// The checkpointed view is caught up: pending 0.
	if !strings.Contains(got, "3       0") {
		t.Errorf("expected cursor 3 / pending 0 in output:\n%s", got)
	}
}

// TestStatsDaemon renders the live dashboard against a canned
// /healthz + /metrics server, exercising the scrape parser end to end.
func TestStatsDaemon(t *testing.T) {
	const metrics = `# HELP orchestra_exchange_passes_total Completed exchange passes.
# TYPE orchestra_exchange_passes_total counter
orchestra_exchange_passes_total{kind="exchange_all"} 3
orchestra_exchange_pass_duration_seconds_count{kind="exchange_all"} 3
orchestra_exchange_pass_duration_seconds_sum{kind="exchange_all"} 0.006
orchestra_exchange_publications_total 12
orchestra_exchange_edits_total 20
orchestra_exchange_edits_cancelled_total 4
orchestra_coalesce_cancellation_ratio 0.2
orchestra_checkpoint_age_seconds 1.5
orchestra_publish_accepted_total 6
orchestra_publish_rejected_total 1
orchestra_view_cursor{view="(global)"} 6
orchestra_view_cursor{view="PGUS"} 5
orchestra_bus_lag{view="(global)"} 0
orchestra_bus_lag{view="PGUS"} 1
orchestra_build_info{go_version="go1.24",version="v0.9.0"} 1
orchestra_process_uptime_seconds 42
orchestra_query_cache_hits 30
orchestra_query_cache_misses 10
orchestra_query_duration_seconds_bucket{le="0.001",outcome="hit"} 25
orchestra_query_duration_seconds_bucket{le="0.01",outcome="hit"} 30
orchestra_query_duration_seconds_bucket{le="+Inf",outcome="hit"} 30
orchestra_query_duration_seconds_bucket{le="0.001",outcome="miss"} 2
orchestra_query_duration_seconds_bucket{le="0.01",outcome="miss"} 8
orchestra_query_duration_seconds_bucket{le="+Inf",outcome="miss"} 10
`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			io.WriteString(w, "ok 6 publications uptime=5s\n")
		case "/metrics":
			io.WriteString(w, metrics)
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	var out strings.Builder
	if err := run([]string{"stats", "-url", ts.URL}, &out); err != nil {
		t.Fatalf("stats -url: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"orchestrad at " + ts.URL,
		"ok 6 publications",
		"passes=3",
		"publications=12",
		"avg=2ms over 3 passes",
		"edits=20 cancelled=4 last-pass ratio=0.20",
		"age=1.5s",
		"accepted=6 rejected=1 failed=0",
		"build        v0.9.0 (go1.24)",
		"uptime       42s",
		"hits=30 misses=10 hit-ratio=75.0%",
		"p50=", "p99=", "over 40 queries",
		"(global)", "PGUS",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stats -url output missing %q:\n%s", want, got)
		}
	}
	// Per-view rows carry cursor and lag.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "PGUS") && !strings.Contains(line, "5") {
			t.Errorf("PGUS row missing cursor 5: %q", line)
		}
	}
}

// TestStatsArgValidation covers the mutually exclusive flag rules.
func TestStatsArgValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"stats"}, "requires -state dir or -url"},
		{[]string{"stats", "-state", "a", "-url", "b"}, "not both"},
		{[]string{"stats", "-state", "a", "extra.cdss"}, "no spec file"},
	}
	for _, tc := range cases {
		err := run(tc.args, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("orchestra %v: error %v, want substring %q", tc.args, err, tc.want)
		}
	}
}

// TestStatsUnreachableDaemon reports a connection failure, not a panic
// or an empty dashboard.
func TestStatsUnreachableDaemon(t *testing.T) {
	err := run([]string{"stats", "-url", "http://127.0.0.1:1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "daemon unreachable") {
		t.Errorf("expected unreachable error, got %v", err)
	}
}
