package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSpec = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)

edit PGUS    + G(1,2,3)
edit PGUS    + G(3,5,2)
edit PBioSQL + B(3,5)
edit PuBio   + U(2,5)
`

func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "taxa.cdss")
	if err := os.WriteFile(path, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCommands(t *testing.T) {
	path := writeSpec(t)
	cases := [][]string{
		{"show", path},
		{"run", path},
		{"run", "-backend", "hash", "-strategy", "dred", path},
		{"run", "-owner", "PBioSQL", path},
		{"query", "-q", "ans(x,y) :- U(x,y)", path},
		{"query", "-nulls", "-q", "ans(x,y) :- U(x,y)", path},
		{"prov", "-rel", "B", "-tuple", "3,2", path},
		{"graph", path},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err != nil {
			t.Errorf("orchestra %v: %v", args, err)
		}
	}
}

func TestRunSaveLoad(t *testing.T) {
	path := writeSpec(t)
	state := filepath.Join(t.TempDir(), "state.orc")
	if err := run([]string{"run", "-save", state, path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatal("state file not written")
	}
	if err := run([]string{"query", "-load", state, "-q", "ans(x,y) :- U(x,y)", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestRunDurableState runs the CLI twice against one -state directory:
// the first run seeds the durable bus from the spec's edits and
// checkpoints; the second recovers instead of republishing, and both
// print identical instances.
func TestRunDurableState(t *testing.T) {
	path := writeSpec(t)
	state := filepath.Join(t.TempDir(), "state")

	var first, second strings.Builder
	if err := run([]string{"run", "-state", state, path}, &first); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(state, "MANIFEST.json")); err != nil {
		t.Fatal("no manifest after first run:", err)
	}
	if _, err := os.Stat(filepath.Join(state, "bus.shards")); err != nil {
		t.Fatal("no durable bus shards after first run:", err)
	}
	if err := run([]string{"run", "-state", state, path}, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("recovered run diverged:\n-- first --\n%s\n-- second --\n%s", first.String(), second.String())
	}
	// Queries and provenance work off the recovered state too.
	if err := run([]string{"query", "-state", state, "-q", "ans(x,y) :- U(x,y)", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"prov", "-state", state, "-rel", "B", "-tuple", "3,2", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeSpec(t)
	cases := [][]string{
		{},                              // no command
		{"bogus", path},                 // unknown command
		{"run"},                         // missing spec
		{"run", "/does/not/exist.cdss"}, // missing file
		{"run", "-backend", "quantum", path},
		{"run", "-strategy", "hope", path},
		{"query", path}, // missing -q
		{"prov", path},  // missing -rel/-tuple
		{"prov", "-rel", "B", "-tuple", "x", path}, // non-constant tuple
		{"run", "-load", "/does/not/exist.orc", path},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("orchestra %v succeeded, want error", args)
		}
	}
}

func TestEvolveCommand(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "taxa.cdss")
	if err := os.WriteFile(specPath, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	diffPath := filepath.Join(dir, "changes.cdssd")
	diffText := `
add peer PRef { relation C(nam int, cls int) }
add mapping m5: U(n,c) -> C(n,n)
remove mapping m4
trust PBioSQL distrusts mapping m1 when n >= 3
`
	if err := os.WriteFile(diffPath, []byte(diffText), 0o644); err != nil {
		t.Fatal(err)
	}
	stateDir := filepath.Join(dir, "state")
	evolvedPath := filepath.Join(dir, "evolved.cdss")

	// Materialize durable state under the original spec.
	var sb strings.Builder
	if err := run([]string{"run", "-state", stateDir, specPath}, &sb); err != nil {
		t.Fatal(err)
	}

	// Missing flags are rejected.
	if err := run([]string{"evolve", specPath}, io.Discard); err == nil {
		t.Fatal("evolve without -state/-diff succeeded")
	}

	// Apply the diff.
	sb.Reset()
	if err := run([]string{"evolve", "-state", stateDir, "-diff", diffPath, "-o", evolvedPath, specPath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "applied 4 operations") {
		t.Fatalf("unexpected evolve output: %s", sb.String())
	}
	evolved, err := os.ReadFile(evolvedPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"peer PRef", "mapping m5", "distrusts mapping m1"} {
		if !strings.Contains(string(evolved), want) {
			t.Fatalf("evolved spec missing %q:\n%s", want, evolved)
		}
	}
	if strings.Contains(string(evolved), "mapping m4:") {
		t.Fatalf("evolved spec still has m4:\n%s", evolved)
	}

	// The stale spec file is rejected against the evolved directory…
	if err := run([]string{"run", "-state", stateDir, specPath}, io.Discard); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("stale spec not rejected: %v", err)
	}
	// …while the evolved one recovers and serves the new relation.
	sb.Reset()
	if err := run([]string{"run", "-state", stateDir, evolvedPath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "C (") {
		t.Fatalf("evolved run does not show relation C:\n%s", sb.String())
	}
}

func TestStatsExplain(t *testing.T) {
	path := writeSpec(t)
	var b strings.Builder
	if err := run([]string{"stats", "-explain", "ans(i,n) :- G(i,c,m), B(i,n)", path}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"cost-based", "estimated results", "probe"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	// A structured query error points at the offending fragment.
	err := run([]string{"stats", "-explain", "ans(i,n) :- Zed(i,n)", path}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "^") {
		t.Fatalf("bad query error lacks caret: %v", err)
	}
	// -explain still requires a spec file.
	if err := run([]string{"stats", "-explain", "ans(i) :- B(i,n)"}, io.Discard); err == nil {
		t.Fatal("stats -explain without spec accepted")
	}
}
