package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"orchestra"
)

// statsCmd renders a one-shot operations dashboard, either offline
// from a state directory (-state: manifest, bus log, snapshot files —
// no lock taken, safe beside a live System) or live from a running
// orchestrad (-url: /healthz plus a /metrics scrape).
func statsCmd(stateDir, url string, out io.Writer) error {
	switch {
	case stateDir != "" && url != "":
		return fmt.Errorf("stats takes -state or -url, not both")
	case stateDir != "":
		return statsFromStateDir(stateDir, out)
	case url != "":
		return statsFromDaemon(url, out)
	default:
		return fmt.Errorf("stats requires -state dir or -url http://host:port")
	}
}

func statsFromStateDir(dir string, out io.Writer) error {
	info, err := orchestra.InspectStateDir(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "state directory %s\n", info.Dir)
	fp := info.SpecFingerprint
	if fp == "" {
		fp = "(none — fresh or non-state directory)"
	}
	fmt.Fprintf(out, "  spec fingerprint  %s\n", fp)
	if info.BusLen >= 0 {
		fmt.Fprintf(out, "  bus               %d publications (bus.olg)\n", info.BusLen)
	} else {
		fmt.Fprintf(out, "  bus               external (no co-located log)\n")
	}
	if len(info.Views) == 0 {
		fmt.Fprintln(out, "  views             none checkpointed")
		return nil
	}
	fmt.Fprintln(out, "  views")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "    VIEW\tCURSOR\tPENDING\tGEN\tSNAPSHOT AGE\tSIZE")
	for _, v := range info.Views {
		pending := "?"
		if v.Pending >= 0 {
			pending = strconv.Itoa(v.Pending)
		}
		age, size := "missing", ""
		if !v.SnapshotTime.IsZero() {
			age = time.Since(v.SnapshotTime).Round(time.Second).String()
			size = formatBytes(v.SnapshotBytes)
		}
		fmt.Fprintf(tw, "    %s\t%d\t%s\t%d\t%s\t%s\n",
			viewLabel(v.Owner), v.Cursor, pending, v.Generation, age, size)
	}
	return tw.Flush()
}

func statsFromDaemon(url string, out io.Writer) error {
	url = strings.TrimRight(url, "/")
	health, err := fetchText(url + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon unreachable: %w", err)
	}
	metricsText, err := fetchText(url + "/metrics")
	if err != nil {
		return err
	}
	m, err := parseMetrics(strings.NewReader(metricsText))
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "orchestrad at %s\n", url)
	fmt.Fprintf(out, "  health       %s\n", strings.TrimSpace(health))
	if versions := m.labelValues("orchestra_build_info", "version"); len(versions) > 0 {
		build := versions[0]
		if gos := m.labelValues("orchestra_build_info", "go_version"); len(gos) > 0 {
			build += " (" + gos[0] + ")"
		}
		fmt.Fprintf(out, "  build        %s\n", build)
	}
	if up, ok := m.lookup("orchestra_process_uptime_seconds"); ok {
		fmt.Fprintf(out, "  uptime       %s\n",
			(time.Duration(up * float64(time.Second))).Round(time.Second))
	}

	passes := m.value(`orchestra_exchange_passes_total{kind="exchange"}`) +
		m.value(`orchestra_exchange_passes_total{kind="exchange_all"}`)
	failures := m.value(`orchestra_exchange_pass_failures_total{kind="exchange"}`) +
		m.value(`orchestra_exchange_pass_failures_total{kind="exchange_all"}`)
	fmt.Fprintf(out, "  exchange     passes=%.0f failures=%.0f publications=%.0f\n",
		passes, failures, m.value("orchestra_exchange_publications_total"))
	if c := m.sumAcrossLabels("orchestra_exchange_pass_duration_seconds_count"); c > 0 {
		s := m.sumAcrossLabels("orchestra_exchange_pass_duration_seconds_sum")
		fmt.Fprintf(out, "  pass time    avg=%s over %.0f passes\n",
			(time.Duration(s / c * float64(time.Second))).Round(time.Microsecond), c)
	}
	fmt.Fprintf(out, "  coalescing   edits=%.0f cancelled=%.0f last-pass ratio=%.2f\n",
		m.value("orchestra_exchange_edits_total"),
		m.value("orchestra_exchange_edits_cancelled_total"),
		m.value("orchestra_coalesce_cancellation_ratio"))
	if age, ok := m.lookup("orchestra_checkpoint_age_seconds"); ok {
		fmt.Fprintf(out, "  checkpoints  age=%s failures=%.0f\n",
			(time.Duration(age * float64(time.Second))).Round(time.Millisecond),
			m.value("orchestra_checkpoint_failures_total"))
	}
	fmt.Fprintf(out, "  publish      accepted=%.0f rejected=%.0f failed=%.0f\n",
		m.value("orchestra_publish_accepted_total"),
		m.value("orchestra_publish_rejected_total"),
		m.value("orchestra_publish_failed_total"))
	hits, misses := m.value("orchestra_query_cache_hits"), m.value("orchestra_query_cache_misses")
	if hits+misses > 0 {
		fmt.Fprintf(out, "  query cache  hits=%.0f misses=%.0f hit-ratio=%.1f%%\n",
			hits, misses, 100*hits/(hits+misses))
	}
	if bs, total := m.histogramBuckets("orchestra_query_duration_seconds"); total > 0 {
		fmt.Fprintf(out, "  query time   p50=%s p99=%s over %.0f queries\n",
			quantileDuration(bs, total, 0.50),
			quantileDuration(bs, total, 0.99), total)
	}

	views := m.labelValues("orchestra_view_cursor", "view")
	if len(views) > 0 {
		fmt.Fprintln(out, "  views")
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "    VIEW\tCURSOR\tLAG")
		for _, v := range views {
			fmt.Fprintf(tw, "    %s\t%.0f\t%.0f\n", v,
				m.value(fmt.Sprintf(`orchestra_view_cursor{view=%q}`, v)),
				m.value(fmt.Sprintf(`orchestra_bus_lag{view=%q}`, v)))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func fetchText(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

// metricSet is a parsed Prometheus text scrape: full series key
// (name{labels}) to value.
type metricSet map[string]float64

// parseMetrics reads the Prometheus text format the daemon emits. It
// only needs the subset orchestrad's own registry writes: one
// "name{labels} value" or "name value" sample per line, '#' comments.
func parseMetrics(r io.Reader) (metricSet, error) {
	m := make(metricSet)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %q: %w", line, err)
		}
		m[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m metricSet) lookup(key string) (float64, bool) {
	v, ok := m[key]
	return v, ok
}

// value returns a series' sample, 0 when absent.
func (m metricSet) value(key string) float64 { return m[key] }

// sumAcrossLabels sums every series of the named metric regardless of
// labels (e.g. a histogram _count over both pass kinds).
func (m metricSet) sumAcrossLabels(name string) float64 {
	var total float64
	for k, v := range m {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// histogramBuckets merges a histogram's cumulative bucket counts across
// every label combination (e.g. the query-duration histogram's cache
// outcomes) into one ascending (le, cumulative-count) list, plus the
// total observation count.
func (m metricSet) histogramBuckets(name string) ([]bucket, float64) {
	prefix := name + "_bucket{"
	byLE := make(map[float64]float64)
	for k, v := range m {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		body := strings.TrimSuffix(strings.TrimPrefix(k, prefix), "}")
		for _, kv := range strings.Split(body, ",") {
			raw, ok := strings.CutPrefix(kv, "le=")
			if !ok {
				continue
			}
			if unq, err := strconv.Unquote(raw); err == nil {
				if le, err := strconv.ParseFloat(unq, 64); err == nil {
					byLE[le] += v
				}
			}
		}
	}
	les := make([]float64, 0, len(byLE))
	for le := range byLE {
		les = append(les, le)
	}
	sort.Float64s(les)
	out := make([]bucket, len(les))
	var total float64
	for i, le := range les {
		out[i] = bucket{le: le, count: byLE[le]}
		total = byLE[le] // cumulative: the +Inf (or last) bucket holds the total
	}
	return out, total
}

// bucket is one cumulative histogram bucket: count of observations <= le.
type bucket struct{ le, count float64 }

// quantileDuration estimates the q-quantile from cumulative buckets by
// linear interpolation within the bucket the rank falls in — the same
// estimate Prometheus's histogram_quantile computes.
func quantileDuration(bs []bucket, total, q float64) time.Duration {
	rank := q * total
	lo, cum := 0.0, 0.0
	for _, b := range bs {
		if b.count >= rank {
			width, inBucket := b.le-lo, b.count-cum
			if math.IsInf(b.le, 1) || inBucket <= 0 {
				return time.Duration(lo * float64(time.Second))
			}
			frac := (rank - cum) / inBucket
			return time.Duration((lo + width*frac) * float64(time.Second))
		}
		lo, cum = b.le, b.count
	}
	return time.Duration(lo * float64(time.Second))
}

// labelValues collects the sorted distinct values of one label across
// a metric's series.
func (m metricSet) labelValues(name, label string) []string {
	prefix := name + "{"
	want := label + "="
	seen := make(map[string]bool)
	for k := range m {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		body := strings.TrimSuffix(strings.TrimPrefix(k, prefix), "}")
		for _, kv := range strings.Split(body, ",") {
			if !strings.HasPrefix(kv, want) {
				continue
			}
			if val, err := strconv.Unquote(strings.TrimPrefix(kv, want)); err == nil {
				seen[val] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func viewLabel(owner string) string {
	if owner == "" {
		return "(global)"
	}
	return owner
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
