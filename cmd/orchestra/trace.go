package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// traceCmd renders one publication's end-to-end lineage across a
// confederation: for every listed orchestrad it fetches
// /debug/trace?pub=<id> and prints the publish-side record (on the node
// that accepted the publish) followed by every exchange pass that
// imported the publication, with per-hop wall clocks down to the
// maintenance phases. The same trace id links the hops because publish
// propagates it in the traceparent header and the bus log stamps it
// into the durable frame — so the tree spans processes, not just one.
func traceCmd(pubID string, urls []string, token string, out io.Writer) error {
	if pubID == "" {
		return fmt.Errorf("trace requires -pub <trace-id>")
	}
	if len(urls) == 0 {
		return fmt.Errorf("trace requires -url http://nodeA[,http://nodeB,...]")
	}
	fmt.Fprintf(out, "trace %s\n", pubID)
	found := false
	for _, u := range urls {
		u = strings.TrimRight(u, "/")
		pt, err := fetchPubTrace(u, pubID, token)
		if err != nil {
			return fmt.Errorf("%s: %w", u, err)
		}
		if renderNodeTrace(out, u, pubID, pt) {
			found = true
		}
	}
	if !found {
		fmt.Fprintln(out, "  (no node has a record of this publication — wrong id, or the rings have rotated past it)")
	}
	return nil
}

// Wire shapes mirroring orchestrad's /debug/trace?pub= response.
type wireSpan struct {
	Name       string            `json:"name"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]int64  `json:"attrs"`
	Labels     map[string]string `json:"labels"`
	Children   []*wireSpan       `json:"children"`
}

type wirePubTrace struct {
	TraceID string `json:"trace_id"`
	Publish *struct {
		Peer     string    `json:"peer"`
		Cursor   int       `json:"cursor"`
		Start    time.Time `json:"start"`
		Edits    int       `json:"edits"`
		AppendNS int64     `json:"append_ns"`
		TotalNS  int64     `json:"total_ns"`
	} `json:"publish"`
	Passes []struct {
		Pass struct {
			Seq    uint64 `json:"seq"`
			Kind   string `json:"kind"`
			WallNS int64  `json:"wall_ns"`
		} `json:"pass"`
		Spans *wireSpan `json:"spans"`
	} `json:"passes"`
}

func fetchPubTrace(baseURL, pubID, token string) (*wirePubTrace, error) {
	req, err := http.NewRequest(http.MethodGet, baseURL+"/debug/trace?pub="+pubID, nil)
	if err != nil {
		return nil, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/trace: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var pt wirePubTrace
	if err := json.Unmarshal(body, &pt); err != nil {
		return nil, fmt.Errorf("decoding trace: %w", err)
	}
	return &pt, nil
}

// renderNodeTrace prints one node's slice of the lineage; it reports
// whether the node had anything to show.
func renderNodeTrace(out io.Writer, nodeURL, pubID string, pt *wirePubTrace) bool {
	if pt.Publish == nil && len(pt.Passes) == 0 {
		return false
	}
	fmt.Fprintf(out, "● %s\n", nodeURL)
	if p := pt.Publish; p != nil {
		fmt.Fprintf(out, "  publish  peer=%s cursor=%d edits=%d append=%s total=%s\n",
			p.Peer, p.Cursor, p.Edits, fmtNS(p.AppendNS), fmtNS(p.TotalNS))
	}
	for _, pe := range pt.Passes {
		fmt.Fprintf(out, "  pass:%s #%d wall=%s\n", pe.Pass.Kind, pe.Pass.Seq, fmtNS(pe.Pass.WallNS))
		if pe.Spans == nil {
			continue
		}
		// Only the view spans that consumed this publication belong to
		// its lineage; a pass may have maintained other views too.
		var views []*wireSpan
		skipped := 0
		for _, vs := range pe.Spans.Children {
			if strings.Contains(","+vs.Labels["trace_ids"]+",", ","+pubID+",") {
				views = append(views, vs)
			} else {
				skipped++
			}
		}
		for i, vs := range views {
			renderViewSpan(out, vs, i == len(views)-1 && skipped == 0)
		}
		if skipped > 0 {
			fmt.Fprintf(out, "  └─ (%d other view(s) in this pass did not consume it)\n", skipped)
		}
	}
	return true
}

func renderViewSpan(out io.Writer, vs *wireSpan, last bool) {
	branch, cont := "├─", "│ "
	if last {
		branch, cont = "└─", "  "
	}
	fmt.Fprintf(out, "  %s %s wall=%s pubs=%d edits=%d derived=%d\n",
		branch, vs.Name, fmtNS(vs.DurationNS),
		vs.Attrs["publications"], vs.Attrs["edits_in"], vs.Attrs["engine_derived"])
	for i, ph := range vs.Children {
		pb := "├─"
		if i == len(vs.Children)-1 {
			pb = "└─"
		}
		fmt.Fprintf(out, "  %s %s %s %s\n", cont, pb, ph.Name, fmtNS(ph.DurationNS))
	}
}

// fmtNS renders nanoseconds human-readably.
func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
