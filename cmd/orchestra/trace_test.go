package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const testTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

// canned /debug/trace?pub= bodies mirroring orchestrad's pubTrace JSON.
// Node A accepted the publish and ran a pass where one of two views
// consumed it; node B only imported it over the bus.
var nodeATrace = fmt.Sprintf(`{
  "trace_id": %[1]q,
  "publish": {"trace_id": %[1]q, "peer": "PGUS", "cursor": 7, "edits": 3,
              "start": "2026-08-08T10:00:00Z", "append_ns": 120000, "total_ns": 450000},
  "passes": [{
    "pass": {"seq": 4, "kind": "exchange_all", "wall_ns": 2500000},
    "spans": {
      "name": "pass:exchange_all", "duration_ns": 2500000,
      "children": [
        {"name": "view:(global)", "duration_ns": 1400000,
         "attrs": {"publications": 1, "edits_in": 3, "engine_derived": 9},
         "labels": {"trace_ids": %[1]q},
         "children": [
           {"name": "fetch", "duration_ns": 200000},
           {"name": "insert", "duration_ns": 700000}
         ]},
        {"name": "view:PFAL", "duration_ns": 300000,
         "labels": {"trace_ids": "feedfacefeedfacefeedfacefeedface"}}
      ]
    }
  }]
}`, testTraceID)

var nodeBTrace = fmt.Sprintf(`{
  "trace_id": %[1]q,
  "passes": [{
    "pass": {"seq": 2, "kind": "exchange", "wall_ns": 900000},
    "spans": {
      "name": "pass:exchange", "duration_ns": 900000,
      "children": [
        {"name": "view:(global)", "duration_ns": 800000,
         "attrs": {"publications": 1, "edits_in": 3},
         "labels": {"trace_ids": "aaaabbbbccccddddaaaabbbbccccdddd,%[1]s"}}
      ]
    }
  }]
}`, testTraceID)

func traceTestServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/trace" || r.URL.Query().Get("pub") != testTraceID {
			http.NotFound(w, r)
			return
		}
		if got := r.Header.Get("Authorization"); got != "Bearer sesame" {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestTraceCmdTwoNodes renders one publication's lineage across two
// canned daemons: the publish-side record on A, pass trees on both, and
// filtering of view spans that did not consume the publication.
func TestTraceCmdTwoNodes(t *testing.T) {
	a := traceTestServer(t, nodeATrace)
	b := traceTestServer(t, nodeBTrace)

	var out strings.Builder
	err := run([]string{"trace", "-pub", testTraceID,
		"-url", a.URL + "," + b.URL, "-token", "sesame"}, &out)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"trace " + testTraceID,
		"● " + a.URL,
		"publish  peer=PGUS cursor=7 edits=3",
		"pass:exchange_all #4",
		"view:(global)", "pubs=1 edits=3 derived=9",
		"fetch", "insert",
		"(1 other view(s) in this pass did not consume it)",
		"● " + b.URL,
		"pass:exchange #2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trace output missing %q:\n%s", want, got)
		}
	}
	// The PFAL view on node A carried a different trace id: filtered out.
	if strings.Contains(got, "view:PFAL") {
		t.Errorf("trace output should not render non-matching view spans:\n%s", got)
	}
}

// TestTraceCmdNotFound prints a friendly note when no node retains the
// publication instead of an empty render.
func TestTraceCmdNotFound(t *testing.T) {
	empty := fmt.Sprintf(`{"trace_id": %q, "passes": []}`, testTraceID)
	a := traceTestServer(t, empty)

	var out strings.Builder
	if err := run([]string{"trace", "-pub", testTraceID,
		"-url", a.URL, "-token", "sesame"}, &out); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !strings.Contains(out.String(), "no node has a record") {
		t.Errorf("expected not-found note, got:\n%s", out.String())
	}
}

// TestTraceCmdErrors covers flag validation and HTTP failures.
func TestTraceCmdErrors(t *testing.T) {
	a := traceTestServer(t, nodeATrace)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"trace", "-url", a.URL}, "requires -pub"},
		{[]string{"trace", "-pub", testTraceID}, "requires -url"},
		// Wrong token: the node answers 401 and the command surfaces it.
		{[]string{"trace", "-pub", testTraceID, "-url", a.URL, "-token", "nope"}, "401"},
	}
	for _, tc := range cases {
		err := run(tc.args, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("orchestra %v: error %v, want substring %q", tc.args, err, tc.want)
		}
	}
}
