package orchestra

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/logstore"
	"orchestra/internal/statestore"
)

// busLogName is the single-file publication log earlier releases
// co-located with the view snapshots; it is now only read once, as
// migration input for the sharded layout.
const busLogName = "bus.olg"

// busShardDirName is the sharded publication log directory
// WithPersistence co-locates with the view snapshots when the System
// owns its bus: one append-only segment per publishing peer. A
// directory still holding the legacy bus.olg is migrated on open.
const busShardDirName = "bus.shards"

// openPersistence wires a System to its state directory: it opens the
// statestore, substitutes a durable file-backed bus when the caller
// did not supply one, and recovers every persisted view — restoring
// its snapshot and resuming its bus cursor so the next Exchange
// replays only publications past the checkpoint.
func (s *System) openPersistence(cfg *config) error {
	st, err := statestore.Open(cfg.persist.dir)
	if err != nil {
		return err
	}
	// A state directory belongs to one confederation description: the
	// manifest records the spec fingerprint its checkpoints were taken
	// under, and recovery under a different spec is rejected up front
	// with a descriptive error instead of resurrecting stale instances.
	// (Evolution re-stamps the fingerprint and re-checkpoints; see
	// System.ApplyDiff.) An empty fingerprint means a fresh directory.
	fp := s.spec.Fingerprint()
	if stored := st.SpecFingerprint(); stored != "" && stored != fp {
		st.Close()
		return fmt.Errorf("orchestra: state directory %s was checkpointed under a different spec (fingerprint %s, running spec is %s); evolve the running system instead of editing the spec, or start from a fresh directory",
			cfg.persist.dir, stored, fp)
	} else if stored == "" {
		if err := st.SetSpecFingerprint(fp); err != nil {
			st.Close()
			return err
		}
	}
	if cfg.bus == nil {
		fb, err := logstore.OpenShardedBus(
			filepath.Join(cfg.persist.dir, busShardDirName),
			filepath.Join(cfg.persist.dir, busLogName))
		if err != nil {
			return err
		}
		cfg.bus = fb
		s.ownBus = fb
	}
	s.store = st
	s.persist = cfg.persist
	for _, vs := range st.Views() {
		_, r, err := st.LoadView(vs.Owner)
		if err != nil {
			s.closePersistence()
			return err
		}
		v, err := core.RestoreView(s.spec, vs.Owner, s.opts, r)
		if errors.Is(err, core.ErrSnapshotSpecMismatch) {
			// A crash between a spec evolution's per-view checkpoints can
			// leave this one snapshot stamped with an older fingerprint
			// than the manifest's. A snapshot is only a cache of the
			// publication history: discard it and let the view rebuild
			// from publication zero on first use.
			if err := st.Remove(vs.Owner); err != nil {
				s.closePersistence()
				return fmt.Errorf("orchestra: discarding stale snapshot of view %q: %w", vs.Owner, err)
			}
			continue
		}
		if err != nil {
			s.closePersistence()
			return fmt.Errorf("orchestra: recovering view %q: %w", vs.Owner, err)
		}
		if s.ownBus != nil && vs.Cursor > s.ownBus.Len() {
			s.closePersistence()
			return fmt.Errorf("orchestra: view %q persisted cursor %d exceeds durable bus length %d (mismatched or truncated state directory?)",
				vs.Owner, vs.Cursor, s.ownBus.Len())
		}
		// Manifests written before sharded cursors carry only the scalar
		// total; CursorFromTotal marks it scalar and the first pull
		// exchange upgrades it to an exact vector (one-shot migration).
		cursor := core.CursorFromTotal(vs.Cursor)
		if vs.Position != "" {
			if cursor, err = core.ParseCursor(vs.Position); err != nil {
				s.closePersistence()
				return fmt.Errorf("orchestra: view %q persisted position: %w", vs.Owner, err)
			}
			if cursor.Total() != vs.Cursor {
				s.closePersistence()
				return fmt.Errorf("orchestra: view %q persisted position %q disagrees with cursor %d",
					vs.Owner, vs.Position, vs.Cursor)
			}
		}
		s.setupView(vs.Owner, v)
		s.views[vs.Owner] = &viewHandle{view: v, cursor: cursor}
	}
	return nil
}

func (s *System) closePersistence() {
	if s.ownBus != nil {
		s.ownBus.Close()
	}
	if s.store != nil {
		s.store.Close()
	}
}

// Checkpoint durably snapshots every materialized view together with
// its bus cursor (via the statestore's atomic write protocol),
// regardless of the configured checkpoint policy. Each view is
// checkpointed under its own lock, so checkpoints never tear against
// concurrent exchanges; ctx cancels between views.
func (s *System) Checkpoint(ctx context.Context) error {
	if s.store == nil {
		return fmt.Errorf("orchestra: persistence not enabled (use WithPersistence)")
	}
	s.mu.RLock()
	owners := make([]string, 0, len(s.views))
	for owner := range s.views {
		owners = append(owners, owner)
	}
	s.mu.RUnlock()
	sort.Strings(owners)
	for _, owner := range owners {
		if err := ctx.Err(); err != nil {
			return err
		}
		h, err := s.handle(owner)
		if err != nil {
			return err
		}
		h.mu.Lock()
		err = s.checkpointLocked(ctx, owner, h)
		h.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// checkpointLocked persists one view; the caller holds h.mu, so the
// snapshot observes a quiescent view and the cursor written beside it
// is exactly the snapshot's publication horizon.
func (s *System) checkpointLocked(ctx context.Context, owner string, h *viewHandle) error {
	if err := h.view.Repair(ctx); err != nil {
		return err
	}
	if err := s.store.SaveView(owner, h.cursor.Total(), h.cursor.String(), h.view.Spec().Fingerprint(), h.view.WriteSnapshot); err != nil {
		return err
	}
	h.sinceCkpt = 0
	return nil
}

// maybeCheckpointLocked applies the checkpoint policy after an
// exchange; the caller holds h.mu and has already advanced the cursor.
// It reports whether a checkpoint was actually attempted (so callers
// can attribute its wall clock). It runs under the exchange's ctx: a
// cancelled checkpoint is harmless (the atomic write protocol keeps
// the previous generation live), and the publications it would have
// covered stay pending for the next one.
func (s *System) maybeCheckpointLocked(ctx context.Context, owner string, h *viewHandle) (bool, error) {
	if s.store == nil || h.sinceCkpt == 0 {
		return false, nil
	}
	switch n := s.persist.everyN; {
	case n == checkpointManual:
		return false, nil
	case n <= 1 || h.sinceCkpt >= n:
		return true, s.checkpointLocked(ctx, owner, h)
	}
	return false, nil
}

// PersistedViews lists the checkpoints recorded in the System's state
// directory, sorted by owner. It reads only the manifest; it does not
// touch the views.
func (s *System) PersistedViews() ([]ViewState, error) {
	if s.store == nil {
		return nil, fmt.Errorf("orchestra: persistence not enabled (use WithPersistence)")
	}
	return s.store.Views(), nil
}

// BusHorizon returns the bus's current typed horizon: the sharded
// position after every publication it holds. Its Total is the
// publication count.
func (s *System) BusHorizon(ctx context.Context) (Cursor, error) {
	return s.bus.Horizon(ctx)
}

// BusLen returns the number of publications on the System's bus.
//
// Deprecated: use BusHorizon; its Total is this count, and the
// per-shard breakdown is what streaming followers resume from.
func (s *System) BusLen(ctx context.Context) (int, error) {
	return core.BusLen(ctx, s.bus)
}

// StateDirView is one view's checkpoint as seen by InspectStateDir.
type StateDirView struct {
	Owner  string
	Cursor int
	// Position is the durable form of the view's typed bus cursor (""
	// in manifests written before sharded cursors).
	Position   string
	Generation uint64
	// Pending is the number of co-located bus publications past the
	// cursor (-1 when the directory has no bus log).
	Pending int
	// SnapshotTime and SnapshotBytes describe the snapshot file (zero
	// values when it is missing — a torn directory InspectStateDir
	// reports rather than repairs).
	SnapshotTime  time.Time
	SnapshotBytes int64
}

// StateDirInfo is InspectStateDir's read-only summary of a state
// directory.
type StateDirInfo struct {
	Dir             string
	SpecFingerprint string
	// BusLen counts publications in the co-located durable bus log
	// (bus.olg); -1 when the directory has none (the System exchanged
	// through an external bus).
	BusLen int
	Views  []StateDirView
}

// InspectStateDir summarizes a state directory without opening it:
// the manifest's checkpoints, the co-located bus log's length, and
// each snapshot file's age and size. It takes no lock and mutates
// nothing, so it is safe to run against the state directory of a live
// System (`orchestra stats -state`): the statestore's atomic manifest
// rename means a concurrent checkpoint yields either the old or the
// new manifest, never a torn one.
func InspectStateDir(dir string) (StateDirInfo, error) {
	m, err := statestore.ReadManifest(dir)
	if err != nil {
		return StateDirInfo{}, err
	}
	info := StateDirInfo{Dir: dir, SpecFingerprint: m.Spec, BusLen: -1}
	// Prefer the sharded layout; fall back to the legacy single file
	// (a directory that was never opened by a sharded-bus release).
	for _, name := range []string{busShardDirName, busLogName} {
		busPath := filepath.Join(dir, name)
		if _, err := os.Stat(busPath); err != nil {
			continue
		}
		n, err := logstore.ReadLen(busPath)
		if err != nil {
			return StateDirInfo{}, err
		}
		info.BusLen = n
		break
	}
	for _, vs := range m.Views {
		v := StateDirView{Owner: vs.Owner, Cursor: vs.Cursor, Position: vs.Position, Generation: vs.Generation, Pending: -1}
		if info.BusLen >= 0 {
			v.Pending = max(info.BusLen-vs.Cursor, 0)
		}
		if fi, err := os.Stat(filepath.Join(dir, vs.File)); err == nil {
			v.SnapshotTime = fi.ModTime()
			v.SnapshotBytes = fi.Size()
		}
		info.Views = append(info.Views, v)
	}
	return info, nil
}

// Close releases resources the System owns: the durable bus log opened
// by WithPersistence and the state directory's lock. It does not
// checkpoint; call Checkpoint first if the current state must be
// durable (policy-driven checkpoints have already run). Views stay
// queryable after Close, but publishing to a closed durable bus and
// checkpointing into a closed store fail.
func (s *System) Close() error {
	var first error
	if s.ownBus != nil {
		first = s.ownBus.Close()
	}
	if s.store != nil {
		if err := s.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
