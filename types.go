package orchestra

import (
	"fmt"
	"io"
	"strings"

	"orchestra/internal/benchharness"
	"orchestra/internal/core"
	"orchestra/internal/datalog"
	"orchestra/internal/engine"
	"orchestra/internal/evolve"
	"orchestra/internal/spec"
	"orchestra/internal/statestore"
	"orchestra/internal/tgd"
	"orchestra/internal/trust"
	"orchestra/internal/value"
	"orchestra/internal/workload"
)

// The public vocabulary of the system. These aliases are the supported
// names for the engine's types: external modules cannot import the
// internal packages directly, but every value they need flows through
// this package.
type (
	// Spec is the static description of a CDSS: peers and their schemas,
	// the schema mappings, and each peer's trust policy.
	Spec = core.Spec
	// Edit is one entry of a peer's edit log: an insertion or deletion
	// of a tuple of one of the peer's own relations.
	Edit = core.Edit
	// EditLog is an ordered list of edits published together.
	EditLog = core.EditLog
	// Publication is one peer's published edit log as stored on a bus.
	Publication = core.Publication
	// ApplyStats reports the work done by one maintenance operation.
	ApplyStats = core.ApplyStats
	// EngineStats reports fixpoint-evaluation work.
	EngineStats = engine.Stats
	// QueryError is a structured query parse/validation failure carrying
	// the byte offset of the offending fragment (see its Detail method).
	QueryError = core.QueryError
	// DeletionStrategy selects how deletions are propagated (§6.3).
	DeletionStrategy = core.DeletionStrategy
	// Backend selects the physical evaluation engine (§5).
	Backend = engine.Backend
	// Tuple is a row of constants and labeled nulls.
	Tuple = value.Tuple
	// Value is one column of a tuple.
	Value = value.Value
	// TrustPolicy is a peer's trust policy Θ (§3.3).
	TrustPolicy = trust.Policy
	// TrustPred is a selection predicate over column names.
	TrustPred = trust.Pred
	// SpecFile is a parsed .cdss file: a Spec plus edit declarations.
	SpecFile = spec.File
	// PeerEdit is one peer-attributed edit declaration of a spec file.
	PeerEdit = spec.PeerEdit
	// ViewState describes one view's durable checkpoint — its owner, the
	// bus cursor the snapshot reflects, and the snapshot generation (see
	// WithPersistence and System.PersistedViews).
	ViewState = statestore.ViewState
	// SpecDiff is an ordered sequence of spec-evolution operations (add
	// peer, add/remove mapping, trust changes); apply one to a running
	// System with ApplyDiff.
	SpecDiff = evolve.Diff
	// SpecOp is one spec-evolution operation of a SpecDiff.
	SpecOp = evolve.Op
)

// Deletion strategies (§6.3's three contenders).
const (
	// DeleteProvenance is the paper's incremental algorithm (Fig. 3).
	DeleteProvenance = core.DeleteProvenance
	// DeleteDRed is the DRed baseline: over-delete, then re-derive.
	DeleteDRed = core.DeleteDRed
	// DeleteRecompute recomputes all derived state from base tables.
	DeleteRecompute = core.DeleteRecompute
)

// Engine backends (§5's two physical designs).
const (
	// BackendIndexed is the Tukwila-style indexed backend.
	BackendIndexed = engine.BackendIndexed
	// BackendHash is the DB2-style transient-hash backend.
	BackendHash = engine.BackendHash
)

// Ins builds an insertion edit.
func Ins(rel string, t Tuple) Edit { return core.Ins(rel, t) }

// Del builds a deletion edit.
func Del(rel string, t Tuple) Edit { return core.Del(rel, t) }

// MakeTuple builds a tuple from Go ints, strings, and Values.
func MakeTuple(vals ...any) Tuple { return core.MakeTuple(vals...) }

// ParseTuple parses a comma-separated constant tuple, e.g. "3,2" or
// "3,'x'".
func ParseTuple(text string) (Tuple, error) {
	var t Tuple
	for _, tok := range strings.Split(text, ",") {
		term, err := tgd.ParseTerm(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		if term.Kind != datalog.TermConst {
			return nil, fmt.Errorf("orchestra: tuple component %q is not a constant", tok)
		}
		t = append(t, term.Const)
	}
	return t, nil
}

// ParseSpec parses a .cdss spec file (peers, relations, mappings, trust
// declarations, and edits). The format is documented in internal/spec.
func ParseSpec(r io.Reader) (*SpecFile, error) { return spec.Parse(r) }

// ParseSpecString is ParseSpec over a string.
func ParseSpecString(s string) (*SpecFile, error) { return spec.ParseString(s) }

// RenderSpec renders a spec file back into the .cdss format.
func RenderSpec(f *SpecFile) string { return spec.Render(f) }

// ParseSpecDiff parses a spec-diff file: evolution operations (one per
// line; peer blocks may span lines) in the syntax of internal/evolve —
// "add peer P { relation R(...) }", "add mapping mX: ...",
// "remove mapping mX", "trust <directive>", "untrust P".
func ParseSpecDiff(r io.Reader) (*SpecDiff, error) { return evolve.Parse(r) }

// ParseSpecDiffString is ParseSpecDiff over a string.
func ParseSpecDiffString(s string) (*SpecDiff, error) { return evolve.ParseString(s) }

// RenderSpecDiff renders a diff back into the parseable diff-file
// syntax.
func RenderSpecDiff(d *SpecDiff) string { return d.String() }

// DiffSpecs computes the evolution operations rewriting one spec into
// another (removals, then new peers, added mappings, and trust
// replacements). Peer removal and schema alteration are unsupported and
// reported as errors.
func DiffSpecs(old, new *Spec) (*SpecDiff, error) { return evolve.DiffSpecs(old, new) }

// EvolveSpec applies a diff to a spec without a running System,
// validating every intermediate spec (well-formedness, ownership, weak
// acyclicity). The input spec is not mutated. Use System.ApplyDiff to
// evolve live state along with the spec.
func EvolveSpec(sp *Spec, d *SpecDiff) (*Spec, error) { return evolve.Apply(sp, d) }

// NewTrustPolicy creates an empty (trust-all) policy for a peer; refine
// it with DistrustPeer / TrustMapping / DistrustMapping / DistrustBase
// and install it via WithTrustFor.
func NewTrustPolicy(owner string) *TrustPolicy { return trust.NewPolicy(owner) }

// ParseTrustPred parses a trust selection predicate such as
// "x >= 3 and y != 5".
func ParseTrustPred(s string) (*TrustPred, error) { return trust.ParsePred(s) }

// Workload generation (§6.1's synthetic methodology).
type (
	// Workload is a generated synthetic confederation plus edit streams.
	Workload = workload.Workload
	// WorkloadConfig parameterizes workload generation.
	WorkloadConfig = workload.Config
	// Topology selects the mapping graph shape.
	Topology = workload.Topology
	// Dataset selects the value universe.
	Dataset = workload.Dataset
	// AttrMode selects how attributes are shared across peers.
	AttrMode = workload.AttrMode
)

// Workload topologies, datasets, and attribute modes.
const (
	TopologyChain    = workload.TopologyChain
	TopologyComplete = workload.TopologyComplete
	TopologyRandom   = workload.TopologyRandom
	DatasetInteger   = workload.DatasetInteger
	DatasetString    = workload.DatasetString
	AttrsRandom      = workload.AttrsRandom
	AttrsShared      = workload.AttrsShared
	AttrsNested      = workload.AttrsNested
)

// NewWorkload generates a synthetic confederation per §6.1.
func NewWorkload(cfg WorkloadConfig) (*Workload, error) { return workload.New(cfg) }

// Benchmark harness (the paper's §6 figures).
type (
	// BenchConfig parameterizes figure regeneration.
	BenchConfig = benchharness.Config
	// BenchTable is one rendered figure.
	BenchTable = benchharness.Table
	// BenchCase is one Go benchmark case shared between go test -bench
	// and cmd/benchfig -json.
	BenchCase = benchharness.GoBench
	// BenchReport is the machine-readable result of a benchmark run —
	// the committed BENCH_*.json snapshot format.
	BenchReport = benchharness.BenchReport
	// BenchComparison is the outcome of gating a candidate report
	// against a committed snapshot (cmd/benchfig -compare).
	BenchComparison = benchharness.Comparison
	// BenchRegression is one benchmark case that regressed past the
	// gate's threshold.
	BenchRegression = benchharness.Regression
)

// BenchFigures maps figure number (4–10) to its runner.
var BenchFigures = benchharness.Figures

// RunBenchCases runs the registered Go benchmark cases (filtered by
// match; nil = all) and collects a BenchReport.
func RunBenchCases(match func(BenchCase) bool, progress func(name string)) BenchReport {
	return benchharness.RunGoBenches(match, progress)
}

// RunBenchCasesN is RunBenchCases measuring each case samples times and
// keeping each metric's minimum — the noise-robust estimator behind
// tight-threshold gates (cmd/benchfig -samples).
func RunBenchCasesN(match func(BenchCase) bool, progress func(name string), samples int) BenchReport {
	return benchharness.RunGoBenchesN(match, progress, samples)
}

// LoadBenchReport reads a BENCH_*.json snapshot from disk.
func LoadBenchReport(path string) (BenchReport, error) {
	return benchharness.LoadReport(path)
}

// CompareBenchReports gates a candidate benchmark report against an
// older snapshot: any case whose ns/op or allocs/op exceeds the
// snapshot's by more than thresholdPct percent is a regression (growing
// from zero always is). This is the comparator behind cmd/benchfig
// -compare and the CI bench-regression gate (`make bench-check`).
func CompareBenchReports(old, new BenchReport, thresholdPct float64) BenchComparison {
	return benchharness.CompareReports(old, new, thresholdPct)
}
