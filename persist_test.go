package orchestra_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"orchestra"
)

// randomHistory generates a reproducible publication sequence: each
// publication is one peer's edit log of 1–3 random insertions and
// (over previously inserted tuples) deletions.
func randomHistory(seed int64, n int) []struct {
	peer string
	log  orchestra.EditLog
} {
	rng := rand.New(rand.NewSource(seed))
	peers := []struct {
		name  string
		rel   string
		arity int
	}{
		{"PGUS", "G", 3},
		{"PBioSQL", "B", 2},
		{"PuBio", "U", 2},
	}
	inserted := map[string][]orchestra.Tuple{}
	history := make([]struct {
		peer string
		log  orchestra.EditLog
	}, n)
	for i := range history {
		p := peers[rng.Intn(len(peers))]
		var log orchestra.EditLog
		for k := rng.Intn(3) + 1; k > 0; k-- {
			if prev := inserted[p.name]; len(prev) > 0 && rng.Float64() < 0.3 {
				log = append(log, orchestra.Del(p.rel, prev[rng.Intn(len(prev))]))
				continue
			}
			vals := make([]any, p.arity)
			for j := range vals {
				vals[j] = rng.Intn(6)
			}
			t := orchestra.MakeTuple(vals...)
			inserted[p.name] = append(inserted[p.name], t)
			log = append(log, orchestra.Ins(p.rel, t))
		}
		history[i].peer, history[i].log = p.name, log
	}
	return history
}

// TestPersistenceRoundTripRandom is the persistence property test: for
// random workloads, checkpoint → restart → recover must yield
// instances, provenance answers, and Pending counts identical to a
// system that never restarted — on both the durable in-memory bus and
// the HTTP bus.
func TestPersistenceRoundTripRandom(t *testing.T) {
	sp := parseTestSpec(t)
	ctx := context.Background()
	owners := []string{"", "PGUS", "PBioSQL", "PuBio"}

	exchangeAll := func(t *testing.T, sys *orchestra.System) {
		t.Helper()
		for _, owner := range owners {
			if _, err := sys.Exchange(ctx, owner); err != nil {
				t.Fatal(err)
			}
		}
	}
	digests := func(t *testing.T, sys *orchestra.System) map[string]string {
		t.Helper()
		out := make(map[string]string, len(owners))
		for _, owner := range owners {
			out[owner] = digest(t, sys, owner)
		}
		return out
	}

	for seed := int64(0); seed < 3; seed++ {
		history := randomHistory(seed, 8)
		half := len(history) / 2

		// Reference: the never-restarted system.
		ref, err := orchestra.New(sp)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range history {
			if err := ref.Publish(ctx, p.peer, p.log); err != nil {
				t.Fatal(err)
			}
		}
		exchangeAll(t, ref)
		want := digests(t, ref)

		// run drives the durable lifecycle: first half, restart (via
		// reopen, which rebuilds System and bus), second half.
		run := func(t *testing.T, open func(t *testing.T) *orchestra.System) {
			sys := open(t)
			for _, p := range history[:half] {
				if err := sys.Publish(ctx, p.peer, p.log); err != nil {
					t.Fatal(err)
				}
			}
			exchangeAll(t, sys)
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}

			sys = open(t)
			for _, owner := range owners {
				pending, err := sys.Pending(ctx, owner)
				if err != nil {
					t.Fatal(err)
				}
				if pending != 0 {
					t.Fatalf("seed %d: view %q has %d pending right after recovery, want 0", seed, owner, pending)
				}
			}
			for _, p := range history[half:] {
				if err := sys.Publish(ctx, p.peer, p.log); err != nil {
					t.Fatal(err)
				}
			}
			exchangeAll(t, sys)
			got := digests(t, sys)
			for _, owner := range owners {
				if got[owner] != want[owner] {
					t.Errorf("seed %d: recovered view %q diverged:\n-- recovered --\n%s\n-- reference --\n%s",
						seed, owner, got[owner], want[owner])
				}
			}
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}
		}

		t.Run(fmt.Sprintf("seed%d/membus", seed), func(t *testing.T) {
			dir := t.TempDir()
			run(t, func(t *testing.T) *orchestra.System {
				sys, err := orchestra.New(sp, orchestra.WithPersistence(dir))
				if err != nil {
					t.Fatal(err)
				}
				return sys
			})
		})

		t.Run(fmt.Sprintf("seed%d/httpbus", seed), func(t *testing.T) {
			dir := t.TempDir()
			busLog := filepath.Join(t.TempDir(), "pubs.olg")
			var stopServer func()
			t.Cleanup(func() {
				if stopServer != nil {
					stopServer()
				}
			})
			run(t, func(t *testing.T) *orchestra.System {
				// Each open simulates a full restart: the previous bus
				// server goes down (releasing its log lock, as a dead
				// process would), then a fresh server reloads the durable
				// publication log and a fresh System recovers its views
				// from the state directory.
				if stopServer != nil {
					stopServer()
				}
				srv := orchestra.NewBusServer()
				if _, err := srv.PersistTo(busLog); err != nil {
					t.Fatal(err)
				}
				ts := httptest.NewServer(srv)
				stopServer = func() { ts.Close(); srv.Close() }
				sys, err := orchestra.New(sp,
					orchestra.WithBus(orchestra.NewHTTPBus(ts.URL)),
					orchestra.WithPersistence(dir))
				if err != nil {
					t.Fatal(err)
				}
				return sys
			})
		})
	}
}

// TestSeedFileEditsResumes checks the idempotent seeding contract: a
// bus already holding a prefix of the spec file's publications (e.g. a
// first run that crashed mid-seeding) gets only the missing tail.
func TestSeedFileEditsResumes(t *testing.T) {
	parsed, err := orchestra.ParseSpecString(testCDSS + `
edit PGUS    + G(1,2,3)
edit PGUS    + G(3,5,2)
edit PBioSQL + B(3,5)
edit PuBio   + U(2,5)
`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dir := t.TempDir()

	// A "crashed" first run: only the first of the three publications
	// (PGUS's two edits batch into one) made it to the durable bus.
	sys, err := orchestra.New(parsed.Spec, orchestra.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{
		orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3)),
		orchestra.Ins("G", orchestra.MakeTuple(3, 5, 2)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys, err = orchestra.New(parsed.Spec, orchestra.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	added, err := sys.SeedFileEdits(ctx, parsed)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Errorf("SeedFileEdits added %d publications, want the 2 missing ones", added)
	}
	if n, _ := sys.BusLen(ctx); n != 3 {
		t.Errorf("bus holds %d publications after resumed seeding, want 3", n)
	}
	// Seeding again is a no-op.
	if added, err = sys.SeedFileEdits(ctx, parsed); err != nil || added != 0 {
		t.Errorf("re-seed: added %d, err %v; want 0, nil", added, err)
	}
	// A fully seeded system matches a never-crashed one.
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	ref, err := orchestra.New(parsed.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.PublishFileEdits(ctx, parsed); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if got, want := digest(t, sys, ""), digest(t, ref, ""); got != want {
		t.Errorf("resumed seeding diverged:\n%s\nwant:\n%s", got, want)
	}
}

// TestCheckpointEveryPolicy checks that CheckpointEvery(n) amortizes:
// no snapshot until n publications accumulated, then one.
func TestCheckpointEveryPolicy(t *testing.T) {
	sp := parseTestSpec(t)
	ctx := context.Background()
	sys, err := orchestra.New(sp, orchestra.WithPersistence(t.TempDir(), orchestra.CheckpointEvery(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	publish := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(i, i, i))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	publish(2)
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	views, err := sys.PersistedViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 0 {
		t.Fatalf("checkpointed after 2 < 3 publications: %+v", views)
	}
	publish(2)
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	views, err = sys.PersistedViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].Cursor != 4 {
		t.Fatalf("after 4 publications: %+v, want one checkpoint at cursor 4", views)
	}
}

// TestCheckpointManualPolicy checks that CheckpointManual persists
// nothing until System.Checkpoint, and that the explicit checkpoint
// recovers.
func TestCheckpointManualPolicy(t *testing.T) {
	sp := parseTestSpec(t)
	ctx := context.Background()
	dir := t.TempDir()
	sys, err := orchestra.New(sp, orchestra.WithPersistence(dir, orchestra.CheckpointManual()))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if views, _ := sys.PersistedViews(); len(views) != 0 {
		t.Fatalf("manual policy auto-checkpointed: %+v", views)
	}
	if err := sys.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	views, err := sys.PersistedViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].Cursor != 1 {
		t.Fatalf("after explicit checkpoint: %+v", views)
	}
	want := digest(t, sys, "")
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := orchestra.New(sp, orchestra.WithPersistence(dir, orchestra.CheckpointManual()))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if got := digest(t, recovered, ""); got != want {
		t.Errorf("recovered digest diverged:\n%s\nwant:\n%s", got, want)
	}
}

// TestCheckpointWithoutPersistenceFails pins the error contract.
func TestCheckpointWithoutPersistenceFails(t *testing.T) {
	sys, err := orchestra.New(parseTestSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(context.Background()); err == nil {
		t.Error("Checkpoint without WithPersistence succeeded")
	}
	if _, err := sys.PersistedViews(); err == nil {
		t.Error("PersistedViews without WithPersistence succeeded")
	}
}

// TestRecoveryRejectsBusBehindCursor enforces the durability
// invariant: a persisted cursor must never exceed the bus's
// publication horizon. Losing the durable bus log while keeping the
// view snapshots must fail loudly, not silently re-import from zero.
func TestRecoveryRejectsBusBehindCursor(t *testing.T) {
	sp := parseTestSpec(t)
	ctx := context.Background()
	dir := t.TempDir()
	sys, err := orchestra.New(sp, orchestra.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, "bus.shards")); err != nil {
		t.Fatal(err)
	}
	_, err = orchestra.New(sp, orchestra.WithPersistence(dir))
	if err == nil || !strings.Contains(err.Error(), "exceeds durable bus length") {
		t.Fatalf("recovery with truncated bus: %v, want horizon-invariant error", err)
	}
}

// TestConcurrentExchangeWithCheckpoints hammers a durable System from
// many goroutines (publishes, exchanges with policy checkpoints,
// explicit Checkpoints) and then verifies a recovered System matches.
// Run with -race.
func TestConcurrentExchangeWithCheckpoints(t *testing.T) {
	sp := parseTestSpec(t)
	dir := t.TempDir()
	sys, err := orchestra.New(sp, orchestra.WithPersistence(dir, orchestra.CheckpointEvery(2)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, rounds*4)
	for i := 0; i < rounds; i++ {
		wg.Add(4)
		go func() {
			defer wg.Done()
			if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(i, i+1, i+2))}); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := sys.Exchange(ctx, ""); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := sys.Exchange(ctx, "PGUS"); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if err := sys.Checkpoint(ctx); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := sys.ExchangeAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	want := digest(t, sys, "")
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := orchestra.New(sp, orchestra.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	for _, owner := range []string{"", "PGUS"} {
		pending, err := recovered.Pending(ctx, owner)
		if err != nil {
			t.Fatal(err)
		}
		if pending != 0 {
			t.Errorf("recovered view %q has %d pending, want 0", owner, pending)
		}
	}
	if got := digest(t, recovered, ""); got != want {
		t.Errorf("recovered digest diverged:\n%s\nwant:\n%s", got, want)
	}
}
