package orchestra_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"orchestra"
)

const testCDSS = `
peer PGUS    { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio   { relation U(nam int, can int) }

mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
mapping m4: B(i,c), U(n,c) -> B(i,n)
`

func parseTestSpec(t *testing.T) *orchestra.Spec {
	t.Helper()
	parsed, err := orchestra.ParseSpecString(testCDSS)
	if err != nil {
		t.Fatal(err)
	}
	return parsed.Spec
}

// runScenario drives the paper's Example 3 lifecycle (inserts, exchange,
// curation deletion, exchange) against a system and returns a printable
// digest of every instance, a query answer, and provenance.
func runScenario(t *testing.T, sys *orchestra.System) string {
	t.Helper()
	ctx := context.Background()
	steps := []struct {
		peer string
		log  orchestra.EditLog
	}{
		{"PGUS", orchestra.EditLog{
			orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3)),
			orchestra.Ins("G", orchestra.MakeTuple(3, 5, 2)),
		}},
		{"PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(3, 5))}},
		{"PuBio", orchestra.EditLog{orchestra.Ins("U", orchestra.MakeTuple(2, 5))}},
	}
	for _, s := range steps {
		if err := sys.Publish(ctx, s.peer, s.log); err != nil {
			t.Fatalf("publish %s: %v", s.peer, err)
		}
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatalf("exchange: %v", err)
	}
	// Curation deletion (end of Example 3), then a second exchange.
	if err := sys.Publish(ctx, "PBioSQL", orchestra.EditLog{orchestra.Del("B", orchestra.MakeTuple(3, 2))}); err != nil {
		t.Fatalf("publish deletion: %v", err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatalf("exchange 2: %v", err)
	}
	return digest(t, sys, "")
}

// digest renders an owner's instances (sorted), a certain-answer query,
// and the provenance of B(3,5)/B(1,3) into one comparable string.
func digest(t *testing.T, sys *orchestra.System, owner string) string {
	t.Helper()
	ctx := context.Background()
	out := ""
	for _, rel := range sys.RelationNames() {
		rows, err := sys.Instance(owner, rel)
		if err != nil {
			t.Fatal(err)
		}
		descs := make([]string, len(rows))
		for i, row := range rows {
			d, err := sys.Describe(owner, row)
			if err != nil {
				t.Fatal(err)
			}
			descs[i] = d
		}
		sort.Strings(descs)
		out += fmt.Sprintf("%s=%v\n", rel, descs)
	}
	rows, err := sys.Query(ctx, owner, "ans(x,y) :- U(x,y)", false)
	if err != nil {
		t.Fatal(err)
	}
	answers := make([]string, len(rows))
	for i, row := range rows {
		answers[i] = row.String()
	}
	sort.Strings(answers)
	out += fmt.Sprintf("query=%v\n", answers)
	for _, tup := range []orchestra.Tuple{orchestra.MakeTuple(3, 5), orchestra.MakeTuple(1, 3)} {
		info, err := sys.Provenance(ctx, owner, "B", tup)
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(info.Support)
		out += fmt.Sprintf("prov B%s expr=%s derivable=%v support=%v\n", tup, info.Expr, info.Derivable, info.Support)
	}
	return out
}

// TestBusEquivalence runs the identical publish/exchange scenario
// embedded (in-memory bus) and federated (HTTP bus against a BusServer)
// and asserts the resulting views, query answers, and provenance agree.
func TestBusEquivalence(t *testing.T) {
	sp := parseTestSpec(t)

	memSys, err := orchestra.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	memDigest := runScenario(t, memSys)

	srv := orchestra.NewBusServer()
	srv.ValidateAgainst(sp)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	httpSys, err := orchestra.New(sp, orchestra.WithBus(orchestra.NewHTTPBus(ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	httpDigest := runScenario(t, httpSys)

	if memDigest != httpDigest {
		t.Errorf("bus implementations diverged:\n-- memory --\n%s\n-- http --\n%s", memDigest, httpDigest)
	}
	if srv.Len() != 4 {
		t.Errorf("bus server holds %d publications, want 4", srv.Len())
	}

	// A second node sharing the HTTP bus rebuilds the same state from
	// scratch — the federation property.
	rebuilt, err := orchestra.New(sp, orchestra.WithBus(orchestra.NewHTTPBus(ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rebuilt.Exchange(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	if d := digest(t, rebuilt, ""); d != memDigest {
		t.Errorf("rebuilt node diverged:\n%s\nwant:\n%s", d, memDigest)
	}
	pending, err := rebuilt.Pending(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if pending != 0 {
		t.Errorf("rebuilt node has %d pending publications, want 0", pending)
	}
}

// TestConcurrentExchange hammers one System from many goroutines —
// concurrent publishes, per-peer exchanges, queries, and global
// exchanges — and then checks that every view converged to the same
// instance. Run with -race.
func TestConcurrentExchange(t *testing.T) {
	sys, err := orchestra.New(parseTestSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const rounds = 8

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	publish := func(peer string, log orchestra.EditLog) {
		defer wg.Done()
		if err := sys.Publish(ctx, peer, log); err != nil {
			errs <- err
		}
	}
	exchange := func(owner string) {
		defer wg.Done()
		if _, err := sys.Exchange(ctx, owner); err != nil {
			errs <- err
		}
	}
	for i := 0; i < rounds; i++ {
		wg.Add(5)
		go publish("PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(i, i+1, i+2))})
		go publish("PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(i, i+2))})
		go exchange("")
		go exchange("PGUS")
		go exchange("PBioSQL")
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sys.Query(ctx, "", "ans(x,y) :- B(x,y)", true); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Drain whatever is still pending, then all views must agree.
	if _, err := sys.ExchangeAll(ctx); err != nil {
		t.Fatal(err)
	}
	want := ""
	for _, owner := range append([]string{""}, sys.Peers()...) {
		got := digest(t, sys, owner)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("view %q diverged:\n%s\nwant:\n%s", owner, got, want)
		}
		pending, err := sys.Pending(ctx, owner)
		if err != nil {
			t.Fatal(err)
		}
		if pending != 0 {
			t.Errorf("view %q still has %d pending publications", owner, pending)
		}
	}
}

// TestCancellation checks that a cancelled context aborts Publish,
// Exchange, and Query instead of running them to completion.
func TestCancellation(t *testing.T) {
	sys, err := orchestra.New(parseTestSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := sys.Publish(cancelled, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(4, 5, 6))}); err == nil {
		t.Error("Publish with cancelled context succeeded")
	}
	if _, err := sys.Exchange(cancelled, ""); err == nil {
		t.Error("Exchange with cancelled context succeeded")
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(cancelled, "", "ans(x,y) :- B(x,y)", false); err == nil {
		t.Error("Query with cancelled context succeeded")
	}
}

// countdownCtx is a context whose Err starts failing after the first n
// checks — it lets a test cancel deterministically in the middle of an
// exchange's propagation fixpoint rather than before it starts.
type countdownCtx struct {
	context.Context
	n int
}

func (c *countdownCtx) Err() error {
	if c.n > 0 {
		c.n--
		return nil
	}
	return context.Canceled
}

// TestExchangeRetryAfterMidApplyCancellation interrupts an exchange
// inside the propagation fixpoint (after the base edits committed) and
// checks that retrying repairs the view: the derived instances must
// match an uninterrupted run instead of silently missing the
// propagation of the interrupted publication.
func TestExchangeRetryAfterMidApplyCancellation(t *testing.T) {
	ctx := context.Background()
	logs := []struct {
		peer string
		log  orchestra.EditLog
	}{
		{"PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3))}},
		{"PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(3, 5))}},
		{"PuBio", orchestra.EditLog{orchestra.Ins("U", orchestra.MakeTuple(2, 5))}},
	}
	build := func() *orchestra.System {
		sys, err := orchestra.New(parseTestSpec(t))
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range logs {
			if err := sys.Publish(ctx, l.peer, l.log); err != nil {
				t.Fatal(err)
			}
		}
		return sys
	}

	clean := build()
	if _, err := clean.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	want := digest(t, clean, "")

	interrupted := build()
	// Let the bus fetch pass, then cancel at the first fixpoint check.
	if _, err := interrupted.Exchange(&countdownCtx{Context: ctx, n: 1}, ""); err == nil {
		t.Fatal("mid-apply cancellation did not surface an error")
	}
	if _, err := interrupted.Exchange(ctx, ""); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if got := digest(t, interrupted, ""); got != want {
		t.Errorf("retried exchange diverged from uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTrustOptionDoesNotMutateSpec checks that WithTrustFor builds the
// System over a copy: one parsed Spec can back several Systems with
// different trust configurations.
func TestTrustOptionDoesNotMutateSpec(t *testing.T) {
	sp := parseTestSpec(t)
	pol := orchestra.NewTrustPolicy("PuBio")
	pol.DistrustPeer("PGUS")
	trusting, err := orchestra.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	distrusting, err := orchestra.New(sp, orchestra.WithTrustFor("PuBio", pol))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Policy("PuBio") != nil {
		t.Fatal("WithTrustFor mutated the caller's spec")
	}
	ctx := context.Background()
	for _, sys := range []*orchestra.System{trusting, distrusting} {
		if err := sys.Publish(ctx, "PGUS", orchestra.EditLog{orchestra.Ins("G", orchestra.MakeTuple(3, 5, 2))}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Exchange(ctx, "PuBio"); err != nil {
			t.Fatal(err)
		}
	}
	full, err := trusting.Instance("PuBio", "U")
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := distrusting.Instance("PuBio", "U")
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) >= len(full) {
		t.Errorf("distrusting view has %d U rows, trusting has %d; want fewer", len(filtered), len(full))
	}
}
