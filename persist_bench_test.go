package orchestra_test

import (
	"context"
	"path/filepath"
	"testing"

	"orchestra"
)

// BenchmarkRecoveryVsRecompute measures what the statestore buys on
// restart: recovering a view from its checkpoint (snapshot load, no
// publications to replay) versus rebuilding it by re-exchanging the
// full durable publication log from cursor zero.
func BenchmarkRecoveryVsRecompute(b *testing.B) {
	parsed, err := orchestra.ParseSpecString(testCDSS)
	if err != nil {
		b.Fatal(err)
	}
	sp := parsed.Spec
	ctx := context.Background()
	dir := b.TempDir()
	busLog := filepath.Join(dir, "bus.olg")

	// Seed the durable state: a checkpointed view over a long history.
	seed, err := orchestra.New(sp, orchestra.WithPersistence(dir))
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range randomHistory(1, 60) {
		if err := seed.Publish(ctx, p.peer, p.log); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := seed.Exchange(ctx, ""); err != nil {
		b.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("recover", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := orchestra.New(sp, orchestra.WithPersistence(dir))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Exchange(ctx, ""); err != nil { // nothing past the cursor
				b.Fatal(err)
			}
			sys.Close()
		}
	})

	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bus, err := orchestra.OpenFileBus(busLog)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := orchestra.New(sp, orchestra.WithBus(bus))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Exchange(ctx, ""); err != nil { // full replay
				b.Fatal(err)
			}
			bus.Close()
		}
	})
}
