package orchestra

import (
	"context"
	"fmt"
	"sync"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/exchange"
	"orchestra/internal/logstore"
	"orchestra/internal/obs"
	"orchestra/internal/statestore"
)

// System is the public facade over one CDSS node: a set of materialized
// peer views attached to a publication bus. Peers publish edit logs to
// the bus; each view imports the publications it has not yet seen when
// its owner runs Exchange (§2's operational model). The special owner ""
// names the global trust-all observer view.
//
// A System is safe for concurrent use: view creation and per-view
// cursors are guarded by a read-write lock, and every operation that
// touches a view's database is serialized per view, so exchanges of
// different peers' views proceed in parallel while two exchanges of the
// same view never interleave.
//
// With WithPersistence the System is additionally durable: views are
// checkpointed (snapshot + bus cursor, atomically) into a state
// directory, and New recovers them — see persist.go.
type System struct {
	// spec is the current confederation description; the evolution
	// operations (evolve.go) swap it under mu, so every read outside a
	// mu-guarded section goes through specNow.
	spec *core.Spec
	// specGen counts applied evolution operations (0 at New); see
	// SpecGeneration.
	specGen  int
	opts     core.Options
	strategy core.DeletionStrategy
	bus      core.PublicationBus
	// sched runs ExchangeAll's per-view passes over a bounded worker
	// pool (WithExchangeParallelism); coalesce selects the coalesced
	// pass over the reference per-publication replay
	// (WithExchangeCoalescing).
	sched    *exchange.Scheduler[ApplyStats]
	coalesce bool

	// Durability (nil/zero without WithPersistence).
	persist *persistConfig
	store   *statestore.Store
	// ownBus is set when WithPersistence created the System's durable
	// bus, making the System responsible for closing it.
	ownBus *logstore.ShardedBus

	// obsx is the operations plane (nil without WithObservability); all
	// its methods are nil-safe, so instrumentation sites call it
	// unconditionally. See obs.go.
	obsx *systemObs

	// secIdx holds the validated WithSecondaryIndex declarations, applied
	// to each view when it materializes (setupView).
	secIdx []secIndexSpec

	// mu guards the views map.
	mu    sync.RWMutex
	views map[string]*viewHandle
}

// viewHandle pairs a materialized view with its bus cursor and the lock
// serializing all operations against the view's database.
type viewHandle struct {
	mu     sync.Mutex
	view   *core.View
	cursor core.Cursor
	// sinceCkpt counts publications applied since the last checkpoint,
	// driving the CheckpointEvery policy.
	sinceCkpt int

	// Push delivery buffer (StartPush): the subscription pump appends
	// deltas under pushMu (never the view lock, so delivery cannot stall
	// behind an exchange), and the next exchange pass drains them,
	// applying in place of a bus fetch when they form a contiguous run.
	pushMu sync.Mutex
	// pushBuf holds deltas delivered since the last exchange, bounded by
	// pushBufferCap.
	pushBuf []core.Delta
	// pushOverflow marks a buffer that hit its cap: the buffered run is
	// no longer complete, so the next exchange pulls instead.
	pushOverflow bool
}

// pushBufferCap bounds each view's push buffer. A view that falls
// further behind than this simply falls back to one pull fetch — push
// delivery never costs unbounded memory.
const pushBufferCap = 256

// bufferPush appends a pushed delta, tripping the overflow flag (and
// dropping the now-incomplete run) at capacity.
func (h *viewHandle) bufferPush(d core.Delta) {
	h.pushMu.Lock()
	defer h.pushMu.Unlock()
	if h.pushOverflow {
		return
	}
	if len(h.pushBuf) >= pushBufferCap {
		h.pushBuf = nil
		h.pushOverflow = true
		return
	}
	h.pushBuf = append(h.pushBuf, d)
}

// takePush drains the push buffer, returning the run and whether it
// overflowed (in which case the run is incomplete and empty).
func (h *viewHandle) takePush() ([]core.Delta, bool) {
	h.pushMu.Lock()
	defer h.pushMu.Unlock()
	deltas, overflow := h.pushBuf, h.pushOverflow
	h.pushBuf, h.pushOverflow = nil, false
	return deltas, overflow
}

// New builds a System over a validated Spec. By default it runs embedded
// — in-memory bus, indexed backend, provenance-driven deletions; the
// options select other backends, strategies, trust policies, and buses.
func New(sp *Spec, opts ...Option) (*System, error) {
	if sp == nil {
		return nil, fmt.Errorf("orchestra: nil spec")
	}
	cfg := config{strategy: core.DeleteProvenance}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.policies != nil {
		// Re-validate over a merged policy map so the caller's Spec stays
		// untouched and shareable across Systems.
		merged := make(map[string]*TrustPolicy, len(sp.Policies)+len(cfg.policies))
		for peer, pol := range sp.Policies {
			merged[peer] = pol
		}
		for peer, pol := range cfg.policies {
			merged[peer] = pol
		}
		var err error
		if sp, err = core.NewSpec(sp.Universe, sp.Mappings, merged); err != nil {
			return nil, err
		}
	}
	for _, ix := range cfg.secIdx {
		if ix.owner != "" && sp.Universe.Peer(ix.owner) == nil {
			return nil, fmt.Errorf("orchestra: WithSecondaryIndex: unknown peer %q", ix.owner)
		}
		rel := sp.Universe.Relation(ix.relation)
		if rel == nil {
			return nil, fmt.Errorf("orchestra: WithSecondaryIndex: unknown relation %q", ix.relation)
		}
		found := false
		for _, col := range rel.Cols {
			if col.Name == ix.column {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("orchestra: WithSecondaryIndex: relation %q has no column %q", ix.relation, ix.column)
		}
	}
	s := &System{
		spec:     sp,
		opts:     cfg.opts,
		strategy: cfg.strategy,
		sched:    exchange.NewScheduler[ApplyStats](cfg.exchPar),
		coalesce: !cfg.serialExchange,
		secIdx:   cfg.secIdx,
		views:    make(map[string]*viewHandle),
	}
	if cfg.persist != nil {
		// May substitute a durable bus for the default and recovers
		// persisted views into s.views.
		if err := s.openPersistence(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.bus == nil {
		cfg.bus = core.NewMemoryBus()
	}
	s.bus = cfg.bus
	if cfg.obs != nil {
		s.initObs(cfg.obs, cfg.slowQuery)
	}
	return s, nil
}

// Spec returns the CDSS description the system currently runs over
// (evolution operations replace it; see SpecGeneration).
func (s *System) Spec() *Spec { return s.specNow() }

// specNow reads the current spec under the lock — evolution swaps the
// pointer, so unguarded reads would race.
func (s *System) specNow() *core.Spec {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.spec
}

// SpecGeneration reports how many evolution operations have been applied
// since New (0 for a freshly built System). It increases monotonically;
// persistence re-checkpoints on every change, so a recovered System
// always resumes from the latest applied spec.
func (s *System) SpecGeneration() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.specGen
}

// Bus returns the publication bus the system exchanges through.
func (s *System) Bus() PublicationBus { return s.bus }

// Peers lists the confederation's peers in registration order.
func (s *System) Peers() []string {
	peers := s.specNow().Universe.Peers()
	out := make([]string, len(peers))
	for i, p := range peers {
		out[i] = p.Name
	}
	return out
}

// RelationNames lists every user relation in the confederation.
func (s *System) RelationNames() []string {
	rels := s.specNow().Universe.Relations()
	out := make([]string, len(rels))
	for i, r := range rels {
		out[i] = r.Name
	}
	return out
}

// handle returns (lazily creating) the handle of an owner's view. View
// construction compiles the whole mapping program, so it runs outside
// the System lock — a parallel ExchangeAll materializing many views on
// first use would otherwise serialize on (and block every reader of)
// s.mu for the duration of each compile. Losers of the insertion race
// discard their compilation; NewView has no side effects beyond the
// returned view.
func (s *System) handle(owner string) (*viewHandle, error) {
	s.mu.RLock()
	h, ok := s.views[owner]
	spec := s.spec
	s.mu.RUnlock()
	if ok {
		return h, nil
	}
	v, err := core.NewView(spec, owner, s.opts)
	if err != nil {
		return nil, err
	}
	// Register the view's gauges before taking the lock: registration
	// allocates and locks the registry, so — like NewView's compile — it
	// stays out of s.mu critical sections. It is idempotent, so racing
	// creators are harmless.
	s.obsx.ensureView(owner)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.views[owner]; ok {
		return h, nil
	}
	if s.spec != spec {
		// An evolution swapped the spec while we compiled; rebuild under
		// the lock (rare — evolutions are exclusive and infrequent).
		//orchestralint:ignore locksafe losing the compile race is rare; recompiling under the lock is the documented fallback (PR 5)
		if v, err = core.NewView(s.spec, owner, s.opts); err != nil {
			return nil, err
		}
	}
	s.setupView(owner, v)
	h = &viewHandle{view: v}
	s.views[owner] = h
	return h, nil
}

// setupView finishes a freshly created (or recovered, or evolution-
// rebuilt) view: it builds the owner's declared secondary indexes and
// attaches the query-cache counters and query-latency observer when an
// operations plane is on.
func (s *System) setupView(owner string, v *core.View) {
	for _, ix := range s.secIdx {
		if ix.owner != owner {
			continue
		}
		// New validated every declaration against the original Spec, so a
		// failure here means a spec evolution removed the relation or
		// column — the declaration is simply void for the rebuilt view.
		_ = v.DeclareSecondaryIndex(ix.relation, ix.column)
	}
	v.SetQueryCacheMetrics(s.obsx.queryCacheMetrics())
	v.SetQueryObserver(s.obsx.queryObserver())
}

// Publish validates a peer's edit log against the spec (peers edit only
// their own relations, §2) and appends it to the publication bus, making
// it visible to every node sharing the bus. It does not touch any view;
// importing is Exchange's job.
func (s *System) Publish(ctx context.Context, peer string, log EditLog) error {
	return core.PublishTo(ctx, s.bus, s.specNow(), peer, log)
}

// PublishFileEdits publishes a spec file's edit declarations in file
// order, batching contiguous same-peer runs into single publications.
func (s *System) PublishFileEdits(ctx context.Context, f *SpecFile) error {
	for _, run := range fileEditRuns(f) {
		if err := s.Publish(ctx, run.Peer, run.Log); err != nil {
			return err
		}
	}
	return nil
}

// SeedFileEdits idempotently seeds a bus from a spec file: it publishes
// only the edit runs the bus does not already hold, assuming the bus's
// existing publications are a prefix of the file's runs (true for a
// durable bus that only this spec file ever seeded). It returns the
// number of publications added. A run interrupted mid-seeding — even by
// a crash — resumes where it stopped, so the bus never ends up with a
// silently truncated or duplicated history.
func (s *System) SeedFileEdits(ctx context.Context, f *SpecFile) (int, error) {
	runs := fileEditRuns(f)
	horizon, err := s.bus.Horizon(ctx)
	if err != nil {
		return 0, err
	}
	have := horizon.Total()
	if have > len(runs) {
		return 0, fmt.Errorf("orchestra: bus already holds %d publications but the spec file seeds only %d", have, len(runs))
	}
	added := 0
	for _, run := range runs[have:] {
		if err := s.Publish(ctx, run.Peer, run.Log); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}

// fileEditRuns batches a spec file's edits into publications: one per
// contiguous same-peer run, in file order.
func fileEditRuns(f *SpecFile) []Publication {
	var runs []Publication
	for _, pe := range f.Edits {
		if n := len(runs); n > 0 && runs[n-1].Peer == pe.Peer {
			runs[n-1].Log = append(runs[n-1].Log, pe.Edit)
			continue
		}
		runs = append(runs, Publication{Peer: pe.Peer, Log: EditLog{pe.Edit}})
	}
	return runs
}

// Exchange performs update exchange for one owner's view: every
// publication on the bus since the view's previous exchange is imported
// in global publication order, with deletions propagated by the
// configured strategy and trust applied per the owner's policy. By
// default the pending run is coalesced into one net maintenance
// operation (see WithExchangeCoalescing); the result is observationally
// identical to the per-publication replay. Cancellation via ctx reaches
// the engine's fixpoint loops; a cancelled exchange leaves the view's
// cursor unadvanced past the last fully applied publication (coalesced
// passes advance all-or-nothing).
//
// Under WithPersistence, a completed exchange checkpoints the view per
// the configured policy (while still holding the view's lock, so the
// persisted cursor always matches the snapshot). A bus holding fewer
// publications than the view's cursor — possible only when a durable
// view outlived its bus's storage — is reported as an error instead of
// silently re-importing from zero.
func (s *System) Exchange(ctx context.Context, owner string) (ApplyStats, error) {
	pass := s.obsx.startPass("exchange")
	stats, err := s.exchangeView(ctx, owner, pass)
	s.obsx.finishPass(pass, "exchange", err)
	return stats, err
}

// exchangeView materializes the owner's view (if needed), runs one
// exchange pass under its lock, and records the pass into the metrics
// and — when pass is non-nil — the trace. It is the shared body of
// Exchange and ExchangeAll's scheduler tasks.
func (s *System) exchangeView(ctx context.Context, owner string, pass *obs.PassTrace) (ApplyStats, error) {
	h, err := s.handle(owner)
	if err != nil {
		pass.AddView(obs.ViewPass{Owner: owner, Err: err.Error()})
		return ApplyStats{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	start := time.Now()
	stats, ckpt, err := s.exchangeLocked(ctx, owner, h)
	s.obsx.recordView(pass, owner, stats, start, ckpt, h.cursor, err)
	return stats, err
}

// exchangeLocked runs one exchange pass for a view whose lock the
// caller holds, reporting how long the post-exchange checkpoint took
// (0 when the policy skipped it).
func (s *System) exchangeLocked(ctx context.Context, owner string, h *viewHandle) (ApplyStats, time.Duration, error) {
	stats, err := s.importLocked(ctx, owner, h)
	if err != nil {
		return stats, 0, err
	}
	ckptStart := time.Now()
	took, cerr := s.maybeCheckpointLocked(ctx, owner, h)
	var ckpt time.Duration
	if took {
		ckpt = time.Since(ckptStart)
	}
	if cerr != nil {
		return stats, ckpt, fmt.Errorf("orchestra: exchange succeeded but checkpoint failed: %w", cerr)
	}
	return stats, ckpt, nil
}

// importLocked advances one view to the bus horizon, preferring the
// push buffer: a contiguous run of subscription-delivered deltas is
// applied directly — no bus round trip — and only a gap, an overflow,
// or a position-less delta (a legacy bus behind AdaptBus) falls back
// to the pull fetch. The caller holds h.mu.
func (s *System) importLocked(ctx context.Context, owner string, h *viewHandle) (ApplyStats, error) {
	if deltas, overflow := h.takePush(); !overflow && len(deltas) > 0 {
		next, stats, handled, err := core.ExchangeDeltas(ctx, h.view, h.cursor, deltas, s.strategy)
		if handled {
			if err != nil {
				return stats, err
			}
			h.sinceCkpt += next.Total() - h.cursor.Total()
			h.cursor = next
			return stats, nil
		}
		// Stale buffer start or a gap (e.g. the view's first pass after
		// recovery, or deltas dropped while no pass ran): pull instead.
		// The pulled run subsumes the buffered one.
	}
	var (
		next  core.Cursor
		stats ApplyStats
		err   error
	)
	if s.coalesce {
		next, stats, err = core.ExchangeCoalesced(ctx, s.bus, h.view, h.cursor, s.strategy)
	} else {
		next, stats, err = core.ExchangeInto(ctx, s.bus, h.view, h.cursor, s.strategy)
	}
	if next.Total() < h.cursor.Total() {
		// Never regress the cursor: with no error this means the bus lost
		// publications the view already applied; with an error, keeping
		// the old cursor lets a retry resume correctly either way.
		if err == nil {
			err = fmt.Errorf("orchestra: bus holds %d publications but view %q has already applied %d (bus behind persisted state?)",
				next.Total(), owner, h.cursor.Total())
		}
		return stats, err
	}
	h.sinceCkpt += next.Total() - h.cursor.Total()
	h.cursor = next
	return stats, err
}

// ExchangeAll runs Exchange for every peer (and for the global view if
// it has been created), returning per-owner statistics. The per-view
// passes run concurrently over a bounded worker pool
// (WithExchangeParallelism; default GOMAXPROCS) — peer views are
// data-independent consumers of the shared bus, so the result is
// identical to the serial walk at any parallelism. On failure, passes
// already started complete, unstarted ones are skipped (and omitted
// from the map), and the reported error is a genuinely failing view's —
// not a sibling that was merely cancelled by the failure.
func (s *System) ExchangeAll(ctx context.Context) (map[string]ApplyStats, error) {
	owners := s.Peers()
	s.mu.RLock()
	if _, hasGlobal := s.views[""]; hasGlobal {
		owners = append(owners, "")
	}
	s.mu.RUnlock()
	// One pass trace spans the whole confederation walk: each task
	// appends its ViewPass (AddView is thread-safe), so /debug/trace
	// shows a parallel ExchangeAll as one span tree.
	pass := s.obsx.startPass("exchange_all")
	tasks := make([]exchange.Task[ApplyStats], len(owners))
	for i, owner := range owners {
		tasks[i] = exchange.Task[ApplyStats]{Owner: owner, Run: func(ctx context.Context) (ApplyStats, error) {
			return s.exchangeView(ctx, owner, pass)
		}}
	}
	out, err := s.sched.Run(ctx, tasks)
	s.obsx.finishPass(pass, "exchange_all", err)
	return out, err
}

// Pending reports how many publications an owner's view has not yet
// imported. It reads only the bus's sequence length, never publication
// bodies, and does not materialize the owner's view (a view that was
// never exchanged has everything pending).
func (s *System) Pending(ctx context.Context, owner string) (int, error) {
	if owner != "" && s.specNow().Universe.Peer(owner) == nil {
		return 0, fmt.Errorf("orchestra: unknown view owner %q", owner)
	}
	cursor := 0
	s.mu.RLock()
	h := s.views[owner]
	s.mu.RUnlock()
	if h != nil {
		h.mu.Lock()
		cursor = h.cursor.Total()
		h.mu.Unlock()
	}
	horizon, err := s.bus.Horizon(ctx)
	if err != nil {
		return 0, err
	}
	return max(horizon.Total()-cursor, 0), nil
}

// ViewCursor reports the typed bus position of an owner's view — the
// sharded cursor its last completed exchange advanced to (the zero
// Cursor for a view that never exchanged or does not exist). The
// durable form (Cursor.String) round-trips through ParseCursor.
func (s *System) ViewCursor(owner string) Cursor {
	s.mu.RLock()
	h := s.views[owner]
	s.mu.RUnlock()
	if h == nil {
		return Cursor{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cursor
}

// Query answers a conjunctive query over an owner's curated instances
// with certain-answers semantics (§2.1): rows containing labeled nulls
// are discarded unless includeNulls is set. The syntax is datalog with
// an optional selection, e.g. "ans(x,y) :- U(x,z), U(y,z) where x >= 3".
func (s *System) Query(ctx context.Context, owner, q string, includeNulls bool) ([]Tuple, error) {
	h, err := s.handle(owner)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.view.Query(ctx, q, includeNulls)
}

// ExplainQuery renders the physical plan Query would use for q over the
// owner's view — join order, access paths (warm index / transient hash /
// scan), cardinality estimates — without evaluating it. The output is
// human-readable text, not a stable format; it is the `orchestra stats
// -explain` surface.
func (s *System) ExplainQuery(ctx context.Context, owner, q string) (string, error) {
	h, err := s.handle(owner)
	if err != nil {
		return "", err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.view.ExplainQuery(ctx, q)
}

// QueryCacheStats reports the owner's view query-cache counters:
// results served from cache, misses, and evictions (capacity plus
// staleness). All zeros when the cache is disabled (WithQueryCache <= 0).
func (s *System) QueryCacheStats(owner string) (hits, misses, evictions uint64, err error) {
	h, err := s.handle(owner)
	if err != nil {
		return 0, 0, 0, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	hits, misses, evictions = h.view.QueryCacheStats()
	return hits, misses, evictions, nil
}

// ProvenanceInfo describes one instance tuple's provenance.
type ProvenanceInfo struct {
	// Expr is the tuple's provenance polynomial (§3.2), rendered with
	// user-facing token names.
	Expr string
	// Derivable reports whether the tuple is derivable from the current
	// local contributions (§4.1.3's test).
	Derivable bool
	// Support names the base tuples the backward pass found supporting
	// the tuple.
	Support []string
}

// ProvenanceExpr returns just the provenance expression of a tuple of
// an owner's curated instance — a graph walk, much cheaper than the
// full Provenance derivability analysis.
func (s *System) ProvenanceExpr(owner, rel string, t Tuple) (string, error) {
	h, err := s.handle(owner)
	if err != nil {
		return "", err
	}
	if s.specNow().Universe.Relation(rel) == nil {
		return "", fmt.Errorf("orchestra: unknown relation %q", rel)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.view.Repair(context.Background()); err != nil {
		return "", err
	}
	return h.view.ProvOf(rel, t).String(), nil
}

// Provenance returns the full provenance of a tuple of an owner's
// curated instance: its provenance expression, its derivability from
// the EDB, and the supporting base tuples. The derivability test runs
// a goal-directed fixpoint (§4.1.3) and holds the view's lock for its
// duration; use ProvenanceExpr when only the expression is needed.
func (s *System) Provenance(ctx context.Context, owner, rel string, t Tuple) (ProvenanceInfo, error) {
	h, err := s.handle(owner)
	if err != nil {
		return ProvenanceInfo{}, err
	}
	if s.specNow().Universe.Relation(rel) == nil {
		return ProvenanceInfo{}, fmt.Errorf("orchestra: unknown relation %q", rel)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.view.Repair(ctx); err != nil {
		return ProvenanceInfo{}, err
	}
	info := ProvenanceInfo{Expr: h.view.ProvOf(rel, t).String()}
	alive, support, err := h.view.Derivability(ctx, rel, t)
	if err != nil {
		return info, err
	}
	info.Derivable = alive
	for _, ref := range support {
		info.Support = append(info.Support, h.view.Graph().TokenName(ref))
	}
	return info, nil
}
