package orchestra

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/statestore"
)

// TestSystemEvolutionWalkthrough exercises every facade evolution verb
// on the paper's running example and checks the repaired instances.
func TestSystemEvolutionWalkthrough(t *testing.T) {
	ctx := context.Background()
	f, err := ParseSpecString(`
peer PGUS { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
peer PuBio { relation U(nam int, can int) }
mapping m1: G(i,c,n) -> B(i,n)
mapping m2: G(i,c,n) -> U(n,c)
mapping m3: B(i,n) -> exists c . U(n,c)
edit PGUS + G(1,2,3)
edit PGUS + G(3,5,2)
edit PBioSQL + B(3,5)
`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(f.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.PublishFileEdits(ctx, f); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if gen := sys.SpecGeneration(); gen != 0 {
		t.Fatalf("fresh system at spec generation %d", gen)
	}

	// Join a new peer and map onto it; its instance fills without any
	// re-exchange.
	if err := sys.AddPeer(ctx, "PRef { relation C(nam int, cls int) }"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMapping(ctx, "m4: U(n,c) -> C(n,n)"); err != nil {
		t.Fatal(err)
	}
	cRows, err := sys.Instance("", "C")
	if err != nil {
		t.Fatal(err)
	}
	uRows, err := sys.Instance("", "U")
	if err != nil {
		t.Fatal(err)
	}
	if len(cRows) == 0 || len(cRows) != len(uniqueFirstCols(uRows)) {
		t.Fatalf("AddMapping repair wrong: C has %d rows, U first-cols %d", len(cRows), len(uniqueFirstCols(uRows)))
	}
	if gen := sys.SpecGeneration(); gen != 2 {
		t.Fatalf("spec generation %d after two ops", gen)
	}

	// The new peer can publish immediately.
	if err := sys.Publish(ctx, "PRef", EditLog{Ins("C", MakeTuple(9, 9))}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}

	// Removing m4 deletes exactly its derivations: C keeps only PRef's
	// own contribution.
	if err := sys.RemoveMapping(ctx, "m4"); err != nil {
		t.Fatal(err)
	}
	cRows, err = sys.Instance("", "C")
	if err != nil {
		t.Fatal(err)
	}
	if len(cRows) != 1 {
		t.Fatalf("after removing m4, C = %v, want only the local (9,9)", cRows)
	}

	// Trust revocation deletes the revoked derivations from the peer's
	// view.
	pol := NewTrustPolicy("PBioSQL")
	pred, err := ParseTrustPred("n >= 3")
	if err != nil {
		t.Fatal(err)
	}
	pol.DistrustMapping("m1", pred)
	if _, err := sys.Exchange(ctx, "PBioSQL"); err != nil {
		t.Fatal(err)
	}
	before, err := sys.Instance("PBioSQL", "B")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetTrust(ctx, "PBioSQL", pol); err != nil {
		t.Fatal(err)
	}
	after, err := sys.Instance("PBioSQL", "B")
	if err != nil {
		t.Fatal(err)
	}
	// m1 derived B(1,3) (n=3, revoked) and B(3,2) (n=2, kept); B(3,5) is
	// base.
	if len(after) != len(before)-1 {
		t.Fatalf("revocation: B went from %v to %v, want exactly one tuple gone", before, after)
	}
	// And granting trust back restores it (mapping-level, no replay).
	if err := sys.SetTrust(ctx, "PBioSQL", nil); err != nil {
		t.Fatal(err)
	}
	restored, err := sys.Instance("PBioSQL", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(before) {
		t.Fatalf("grant: B = %v, want %v", restored, before)
	}

	// Unknown ids and invalid declarations are rejected without touching
	// the spec.
	gen := sys.SpecGeneration()
	if err := sys.RemoveMapping(ctx, "nope"); err == nil {
		t.Fatal("removing unknown mapping succeeded")
	}
	if err := sys.AddMapping(ctx, "m1: G(i,c,n) -> B(i,n)"); err == nil {
		t.Fatal("duplicate mapping id accepted")
	}
	if sys.SpecGeneration() != gen {
		t.Fatal("failed operations bumped the spec generation")
	}
}

func uniqueFirstCols(rows []Tuple) map[Value]bool {
	out := make(map[Value]bool)
	for _, r := range rows {
		out[r[0]] = true
	}
	return out
}

// TestSystemEvolutionBaseTrustReplay exercises the replay fallback:
// loosening base-level trust rebuilds the peer's view from the
// publication history, resurrecting tuples that were never imported.
func TestSystemEvolutionBaseTrustReplay(t *testing.T) {
	ctx := context.Background()
	f, err := ParseSpecString(`
peer PGUS { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
mapping m1: G(i,c,n) -> B(i,n)
`)
	if err != nil {
		t.Fatal(err)
	}
	pol := NewTrustPolicy("PBioSQL")
	pol.DistrustPeer("PGUS")
	sys, err := New(f.Spec, WithTrustFor("PBioSQL", pol))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(ctx, "PGUS", EditLog{Ins("G", MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, "PBioSQL"); err != nil {
		t.Fatal(err)
	}
	rows, err := sys.Instance("PBioSQL", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("distrusted peer's data imported: %v", rows)
	}
	// Loosen: PGUS becomes trusted; the view replays and B(1,3) appears
	// even though the publication was consumed long ago.
	if err := sys.SetTrust(ctx, "PBioSQL", nil); err != nil {
		t.Fatal(err)
	}
	rows, err = sys.Instance("PBioSQL", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("replay did not resurrect the newly trusted derivation: %v", rows)
	}
	// Pending publications stayed pending (cursor unchanged by replay).
	if n, err := sys.Pending(ctx, "PBioSQL"); err != nil || n != 0 {
		t.Fatalf("pending = %d, %v", n, err)
	}
}

// ---------------------------------------------------------------------------
// Equivalence property test.

// systemState is the observable state of one system, rendered with
// structural labeled nulls so differently-evolved but isomorphic systems
// compare equal: per owner, sorted instance/rejection rows per relation
// and the sorted provenance derivations.
type systemState map[string]map[string][]string

// captureState renders instances, rejections, and the provenance graph
// of every owner view (all peers plus the global view).
func captureState(t *testing.T, sys *System) systemState {
	t.Helper()
	out := make(systemState)
	owners := append(sys.Peers(), "")
	for _, owner := range owners {
		st := make(map[string][]string)
		for _, rel := range sys.RelationNames() {
			inst, err := sys.DescribeInstance(owner, rel)
			if err != nil {
				t.Fatal(err)
			}
			st["inst:"+rel] = inst
			rej, err := sys.Rejections(owner, rel)
			if err != nil {
				t.Fatal(err)
			}
			descs := make([]string, len(rej))
			for i, r := range rej {
				if descs[i], err = sys.Describe(owner, r); err != nil {
					t.Fatal(err)
				}
			}
			sort.Strings(descs)
			st["rej:"+rel] = descs
		}
		g, err := sys.ProvenanceGraph(owner)
		if err != nil {
			t.Fatal(err)
		}
		var derivs []string
		g.AllDerivations(func(d provenance.Derivation) bool {
			var parts []string
			render := func(refs []ProvRef) string {
				ss := make([]string, len(refs))
				for i, ref := range refs {
					desc, err := sys.Describe(owner, ref.Tuple())
					if err != nil {
						t.Fatal(err)
					}
					ss[i] = ref.Rel + desc
				}
				return strings.Join(ss, ",")
			}
			parts = append(parts, d.Mapping.ID, render(d.Sources), render(d.Targets))
			derivs = append(derivs, strings.Join(parts, "|"))
			return true
		})
		sort.Strings(derivs)
		st["prov"] = derivs
		out[owner] = st
	}
	return out
}

// assertNullBijection checks that the labeled-null ids of two systems
// relate by one consistent bijection across every instance of every
// owner view — ids are history-dependent (an evolved system interned
// nulls for since-removed mappings), but a well-repaired system uses its
// ids consistently everywhere.
func assertNullBijection(t *testing.T, a, b *System) {
	t.Helper()
	fwd := make(map[int64]int64)
	rev := make(map[int64]int64)
	owners := append(a.Peers(), "")
	for _, owner := range owners {
		for _, rel := range a.RelationNames() {
			ra, err := a.Instance(owner, rel)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := b.Instance(owner, rel)
			if err != nil {
				t.Fatal(err)
			}
			if len(ra) != len(rb) {
				t.Fatalf("owner %q rel %q: %d vs %d rows", owner, rel, len(ra), len(rb))
			}
			byDesc := func(sys *System, rows []Tuple) map[string]Tuple {
				m := make(map[string]Tuple, len(rows))
				for _, r := range rows {
					d, err := sys.Describe(owner, r)
					if err != nil {
						t.Fatal(err)
					}
					m[d] = r
				}
				return m
			}
			ma, mb := byDesc(a, ra), byDesc(b, rb)
			for d, ta := range ma {
				tb, ok := mb[d]
				if !ok {
					t.Fatalf("owner %q rel %q: row %s missing from fresh system", owner, rel, d)
				}
				for i := range ta {
					if !ta[i].IsNull() {
						continue
					}
					ai, bi := ta[i].NullID(), tb[i].NullID()
					if prev, ok := fwd[ai]; ok && prev != bi {
						t.Fatalf("null id %d maps to both %d and %d", ai, prev, bi)
					}
					if prev, ok := rev[bi]; ok && prev != ai {
						t.Fatalf("null id %d mapped from both %d and %d", bi, prev, ai)
					}
					fwd[ai], rev[bi] = bi, ai
				}
			}
		}
	}
}

func assertStatesEqual(t *testing.T, label string, got, want systemState) {
	t.Helper()
	for owner, wantTables := range want {
		gotTables := got[owner]
		for key, wantRows := range wantTables {
			gotRows := gotTables[key]
			if strings.Join(gotRows, ";") != strings.Join(wantRows, ";") {
				t.Errorf("%s: owner %q %s differs\n evolved: %v\n fresh:   %v", label, owner, key, gotRows, wantRows)
			}
		}
	}
}

// TestEvolveEquivalence is the equivalence property: for random
// workloads, any interleaving of publications, exchanges, and evolution
// operations (AddPeer / AddMapping / RemoveMapping / SetTrust) ends
// observationally identical — instances, rejections, provenance
// derivations (structural nulls), and a consistent labeled-null
// bijection — to a fresh System built from the final spec over the same
// publication history. Runs on both engine backends with the default
// parallelism; CI's race job and the nightly-style job (with
// ORCHESTRA_EVOLVE_SEEDS raised) extend the coverage.
func TestEvolveEquivalence(t *testing.T) {
	seeds := 3
	if s := os.Getenv("ORCHESTRA_EVOLVE_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad ORCHESTRA_EVOLVE_SEEDS %q", s)
		}
		seeds = n
	}
	for _, be := range []Backend{BackendIndexed, BackendHash} {
		name := "indexed"
		if be == BackendHash {
			name = "hash"
		}
		t.Run(name, func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					runEvolveScenario(t, be, int64(seed))
				})
			}
		})
	}
}

func runEvolveScenario(t *testing.T, be Backend, seed int64) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	w, err := NewWorkload(WorkloadConfig{
		Peers:    3,
		Topology: TopologyChain,
		AttrMode: AttrsShared,
		Dataset:  DatasetInteger,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(w.Spec, WithBackend(be))
	if err != nil {
		t.Fatal(err)
	}

	nextID := 0
	var addedRels []string // relations of peers added during the run

	publish := func() {
		peers := w.PeerNames()
		peer := peers[rng.Intn(len(peers))]
		log := w.GenInsertions(peer, 1+rng.Intn(3))
		if rng.Intn(3) == 0 {
			log = append(log, w.GenDeletions(peer, 1)...)
		}
		if len(log) == 0 {
			return
		}
		if err := sys.Publish(ctx, peer, log); err != nil {
			t.Fatal(err)
		}
	}
	publishAdded := func() {
		if len(addedRels) == 0 {
			return
		}
		rel := addedRels[rng.Intn(len(addedRels))]
		peer := sys.Spec().PeerOf(rel)
		log := EditLog{Ins(rel, MakeTuple(rng.Intn(50), rng.Intn(50)))}
		if err := sys.Publish(ctx, peer, log); err != nil {
			t.Fatal(err)
		}
	}
	exchangeSome := func() {
		for _, p := range sys.Peers() {
			if rng.Intn(2) == 0 {
				if _, err := sys.Exchange(ctx, p); err != nil {
					t.Fatal(err)
				}
			}
		}
		if rng.Intn(2) == 0 {
			if _, err := sys.Exchange(ctx, ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	addPeer := func() {
		nextID++
		rel := fmt.Sprintf("Z%d", nextID)
		decl := fmt.Sprintf("PZ%d { relation %s(a int, b int) }", nextID, rel)
		if err := sys.AddPeer(ctx, decl); err != nil {
			t.Fatal(err)
		}
		addedRels = append(addedRels, rel)
	}
	addMapping := func() {
		u := sys.Spec().Universe
		rels := u.Relations()
		src := rels[rng.Intn(len(rels))]
		dst := rels[rng.Intn(len(rels))]
		if src.Peer == dst.Peer {
			return
		}
		srcVars := make([]string, src.Arity())
		for i := range srcVars {
			srcVars[i] = fmt.Sprintf("v%d", i)
		}
		dstArgs := make([]string, dst.Arity())
		var exist []string
		for i := range dstArgs {
			if i < len(srcVars) {
				dstArgs[i] = srcVars[i]
			} else {
				dstArgs[i] = fmt.Sprintf("e%d", i)
				exist = append(exist, dstArgs[i])
			}
		}
		nextID++
		decl := fmt.Sprintf("x%d: %s(%s) -> ", nextID, src.Name, strings.Join(srcVars, ","))
		if len(exist) > 0 {
			decl += "exists " + strings.Join(exist, ",") + " . "
		}
		decl += fmt.Sprintf("%s(%s)", dst.Name, strings.Join(dstArgs, ","))
		err := sys.AddMapping(ctx, decl)
		if err != nil && strings.Contains(err.Error(), "weakly acyclic") {
			return // candidate rejected by validation; spec unchanged
		}
		if err != nil {
			t.Fatalf("AddMapping(%q): %v", decl, err)
		}
	}
	removeMapping := func() {
		ms := sys.Spec().Mappings
		if len(ms) <= 1 {
			return
		}
		if err := sys.RemoveMapping(ctx, ms[rng.Intn(len(ms))].ID); err != nil {
			t.Fatal(err)
		}
	}
	setTrust := func() {
		peers := sys.Peers()
		peer := peers[rng.Intn(len(peers))]
		switch rng.Intn(3) {
		case 0: // clear (may trigger the replay path)
			if err := sys.SetTrust(ctx, peer, nil); err != nil {
				t.Fatal(err)
			}
		case 1: // mapping-level condition
			ms := sys.Spec().Mappings
			if len(ms) == 0 {
				return
			}
			m := ms[rng.Intn(len(ms))]
			vars := m.LHSVars()
			if len(vars) == 0 {
				return
			}
			pred, err := ParseTrustPred(fmt.Sprintf("%s >= %d", vars[rng.Intn(len(vars))], rng.Intn(1000)))
			if err != nil {
				t.Fatal(err)
			}
			pol := NewTrustPolicy(peer)
			pol.DistrustMapping(m.ID, pred)
			if err := sys.SetTrust(ctx, peer, pol); err != nil {
				t.Fatal(err)
			}
		default: // base-level peer distrust (tightening)
			other := peers[rng.Intn(len(peers))]
			if other == peer {
				return
			}
			pol := NewTrustPolicy(peer)
			pol.DistrustPeer(other)
			if err := sys.SetTrust(ctx, peer, pol); err != nil {
				t.Fatal(err)
			}
		}
	}

	steps := 14
	for i := 0; i < steps; i++ {
		switch rng.Intn(8) {
		case 0, 1:
			publish()
		case 2:
			publishAdded()
		case 3, 4:
			exchangeSome()
		case 5:
			addMapping()
		case 6:
			if rng.Intn(2) == 0 {
				removeMapping()
			} else {
				addPeer()
			}
		default:
			setTrust()
		}
	}

	// Settle: everyone catches up under the final spec.
	for _, p := range sys.Peers() {
		if _, err := sys.Exchange(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}

	// The oracle: a fresh System over the final spec and the same
	// publication history.
	fresh, err := New(sys.Spec(), WithBackend(be), WithBus(sys.Bus()))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fresh.Peers() {
		if _, err := fresh.Exchange(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fresh.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}

	assertStatesEqual(t, fmt.Sprintf("seed %d", seed), captureState(t, sys), captureState(t, fresh))
	assertNullBijection(t, sys, fresh)
}

// ---------------------------------------------------------------------------
// Spec fingerprints: snapshots and state directories reject stale specs.

func TestRestoreSnapshotSpecMismatch(t *testing.T) {
	ctx := context.Background()
	f, err := ParseSpecString(`
peer PGUS { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
mapping m1: G(i,c,n) -> B(i,n)
edit PGUS + G(1,2,3)
`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(f.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.PublishFileEdits(ctx, f); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := sys.WriteSnapshot("", &buf); err != nil {
		t.Fatal(err)
	}

	// Same spec restores fine.
	if err := sys.RestoreSnapshot("", strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	// An evolved system rejects the stale snapshot with a descriptive
	// error.
	if err := sys.AddMapping(ctx, "m2: G(i,c,n) -> exists z . B(i,z)"); err != nil {
		t.Fatal(err)
	}
	err = sys.RestoreSnapshot("", strings.NewReader(buf.String()))
	if err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("stale snapshot accepted: %v", err)
	}
}

func TestPersistenceSpecFingerprint(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	specText := `
peer PGUS { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
mapping m1: G(i,c,n) -> B(i,n)
`
	f, err := ParseSpecString(specText)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(f.Spec, WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(ctx, "PGUS", EditLog{Ins("G", MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	// Evolve the running system; persistence re-stamps and
	// re-checkpoints.
	if err := sys.AddMapping(ctx, "m2: G(i,c,n) -> exists z . B(n,z)"); err != nil {
		t.Fatal(err)
	}
	evolved := sys.Spec()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening under the stale (original) spec is rejected loudly.
	f2, err := ParseSpecString(specText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f2.Spec, WithPersistence(dir)); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("stale-spec recovery not rejected: %v", err)
	}
	// Ensure the failed open released its locks.
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json")); err != nil {
		t.Fatal(err)
	}

	// Reopening under the evolved spec recovers the checkpointed view.
	sys2, err := New(evolved, WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	views, err := sys2.PersistedViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].Cursor != 1 {
		t.Fatalf("recovered views = %+v", views)
	}
	rows, err := sys2.Instance("", "B")
	if err != nil {
		t.Fatal(err)
	}
	// m1 derived B(1,3); m2 derived B(3,null).
	if len(rows) != 2 {
		t.Fatalf("recovered instance B = %v, want 2 rows", rows)
	}
}

// TestEvolutionCrashSelfHeals simulates a crash between a spec
// evolution's manifest re-stamp and its per-view checkpoints: the
// manifest names the evolved spec while a view's snapshot still embeds
// the old one. Recovery must discard the stale snapshot (a snapshot is
// only a cache of the publication history) and rebuild that view from
// publication zero instead of wedging the directory.
func TestEvolutionCrashSelfHeals(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	f, err := ParseSpecString(`
peer PGUS { relation G(id int, can int, nam int) }
peer PBioSQL { relation B(id int, nam int) }
mapping m1: G(i,c,n) -> B(i,n)
`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(f.Spec, WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(ctx, "PGUS", EditLog{Ins("G", MakeTuple(1, 2, 3))}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Evolve the spec offline and stamp only the manifest, leaving the
	// old-spec snapshot in place — the post-crash state.
	evolved, err := EvolveSpec(f.Spec, &SpecDiff{Ops: []SpecOp{mustParseDiffOp(t, "add mapping m2: G(i,c,n) -> exists z . B(n,z)")}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := statestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetSpecFingerprint(evolved.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := New(evolved, WithPersistence(dir))
	if err != nil {
		t.Fatalf("recovery wedged on the stale snapshot: %v", err)
	}
	defer sys2.Close()
	// The stale checkpoint was discarded…
	views, err := sys2.PersistedViews()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 0 {
		t.Fatalf("stale checkpoint survived: %+v", views)
	}
	// …and the view rebuilds from the publication history under the
	// evolved spec.
	if _, err := sys2.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	rows, err := sys2.Instance("", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rebuilt instance B = %v, want m1's and m2's derivations", rows)
	}
}

func mustParseDiffOp(t *testing.T, line string) SpecOp {
	t.Helper()
	d, err := ParseSpecDiffString(line)
	if err != nil || len(d.Ops) != 1 {
		t.Fatalf("bad diff line %q: %v", line, err)
	}
	return d.Ops[0]
}
