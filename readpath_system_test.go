package orchestra_test

import (
	"context"
	"strings"
	"testing"

	"orchestra"
)

// seedExample publishes Example 3's edits and exchanges the owner view.
func seedExample(t *testing.T, sys *orchestra.System, owner string) {
	t.Helper()
	ctx := context.Background()
	logs := []struct {
		peer string
		log  orchestra.EditLog
	}{
		{"PGUS", orchestra.EditLog{
			orchestra.Ins("G", orchestra.MakeTuple(1, 2, 3)),
			orchestra.Ins("G", orchestra.MakeTuple(3, 5, 2)),
		}},
		{"PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(3, 5))}},
		{"PuBio", orchestra.EditLog{orchestra.Ins("U", orchestra.MakeTuple(2, 5))}},
	}
	for _, s := range logs {
		if err := sys.Publish(ctx, s.peer, s.log); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Exchange(ctx, owner); err != nil {
		t.Fatal(err)
	}
}

func TestWithSecondaryIndexValidation(t *testing.T) {
	sp := parseTestSpec(t)
	cases := []struct{ owner, rel, col string }{
		{"Nope", "B", "id"},
		{"", "Zed", "id"},
		{"", "B", "nope"},
	}
	for _, c := range cases {
		if _, err := orchestra.New(sp, orchestra.WithSecondaryIndex(c.owner, c.rel, c.col)); err == nil {
			t.Errorf("WithSecondaryIndex(%q,%q,%q) accepted", c.owner, c.rel, c.col)
		}
	}
	sys, err := orchestra.New(sp, orchestra.WithSecondaryIndex("", "B", "id"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
}

func TestSecondaryIndexServesQueryPlan(t *testing.T) {
	// On the hash backend a probe only shows "persistent index" when a
	// declared index exists — transient builds otherwise — so the explain
	// output proves the declaration took effect.
	sys, err := orchestra.New(parseTestSpec(t),
		orchestra.WithBackend(orchestra.BackendHash),
		orchestra.WithSecondaryIndex("", "B", "id"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	seedExample(t, sys, "")
	plan, err := sys.ExplainQuery(context.Background(), "", "ans(i,n) :- G(i,c,m), B(i,n)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "persistent index") {
		t.Fatalf("declared index not used by the plan:\n%s", plan)
	}
	if !strings.Contains(plan, "cost-based") {
		t.Fatalf("query plan not cost-based:\n%s", plan)
	}
	rows, err := sys.Query(context.Background(), "", "ans(i,n) :- B(i,n)", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("indexed view answered nothing")
	}
}

func TestLegacyQueryPlannerOption(t *testing.T) {
	sys, err := orchestra.New(parseTestSpec(t), orchestra.WithLegacyQueryPlanner())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	seedExample(t, sys, "")
	plan, err := sys.ExplainQuery(context.Background(), "", "ans(i,n) :- B(i,n)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "fixed order") {
		t.Fatalf("legacy planner not in effect:\n%s", plan)
	}
}

func TestQueryCacheFacadeStatsAndMetrics(t *testing.T) {
	ctx := context.Background()
	o := orchestra.NewObservability(0)
	sys, err := orchestra.New(parseTestSpec(t), orchestra.WithObservability(o))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	seedExample(t, sys, "")
	q := "ans(i,n) :- B(i,n)"
	for i := 0; i < 3; i++ {
		if _, err := sys.Query(ctx, "", q, false); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, _, err := sys.QueryCacheStats("")
	if err != nil {
		t.Fatal(err)
	}
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", hits, misses)
	}
	// A write through the bus invalidates on the next read.
	if err := sys.Publish(ctx, "PBioSQL", orchestra.EditLog{orchestra.Ins("B", orchestra.MakeTuple(7, 7))}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exchange(ctx, ""); err != nil {
		t.Fatal(err)
	}
	rows, err := sys.Query(ctx, "", q, false)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r[0].AsInt() == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale cached result after exchange: %v", rows)
	}
	var b strings.Builder
	o.Registry().WritePrometheus(&b)
	text := b.String()
	for _, name := range []string{"orchestra_query_cache_hits", "orchestra_query_cache_misses", "orchestra_query_cache_evictions"} {
		if !strings.Contains(text, name) {
			t.Errorf("registry missing %s", name)
		}
	}
}

func TestWithQueryCacheDisabledFacade(t *testing.T) {
	sys, err := orchestra.New(parseTestSpec(t), orchestra.WithQueryCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	seedExample(t, sys, "")
	for i := 0; i < 2; i++ {
		if _, err := sys.Query(context.Background(), "", "ans(i,n) :- B(i,n)", false); err != nil {
			t.Fatal(err)
		}
	}
	if h, m, e, err := sys.QueryCacheStats(""); err != nil || h+m+e != 0 {
		t.Fatalf("disabled cache active: %d/%d/%d (%v)", h, m, e, err)
	}
}
